#ifndef RDMAJOIN_TIMING_SPAN_TRACE_H_
#define RDMAJOIN_TIMING_SPAN_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rdma/verbs.h"
#include "sim/fabric.h"
#include "util/arena.h"
#include "util/flat_map.h"
#include "util/statusor.h"

namespace rdmajoin {

struct JsonValue;

/// Sizing of the span flight recorder. The recorder is always-on by default
/// with a fixed byte budget split between the two rings (spans and flow-rate
/// segments); when a ring wraps, the oldest entries are overwritten
/// deterministically and counted as dropped.
struct SpanConfig {
  bool enabled = true;
  /// Combined byte budget of the span and segment rings. The default keeps
  /// every span of the test and bench workloads (tens of thousands of work
  /// requests) while bounding memory for arbitrarily large replays.
  uint64_t max_bytes = 8 * 1024 * 1024;
  /// Keep the binding-constraint labels the fabric attaches to each rate
  /// segment (FlowTelemetry). When false the recorder stores
  /// RateConstraint::kNone everywhere, segments merge purely on rate, and
  /// the JSON export falls back to schema version 1 -- byte-identical to a
  /// pre-constraint recorder.
  bool record_constraints = true;
};

/// Lifecycle stages of one work-request span, in causal order. Push
/// transports read them as posted -> credit acquired -> fabric admitted ->
/// delivered -> completion polled; RDMA READ pulls map the same slots onto
/// READ issued -> staged -> drained (the span's `pull` flag says which).
enum class SpanStage : uint8_t {
  /// The partitioning thread reached the send on its compute timeline.
  kPosted = 0,
  /// A double-buffering credit for the send's slot was available (equals
  /// kPosted when the thread never stalled).
  kCreditAcquired = 1,
  /// The message entered the fabric (after the per-send post overhead).
  kFabricAdmitted = 2,
  /// The last byte arrived at the destination (fabric completion).
  kDelivered = 3,
  /// The sender observed the completion and recycled the credit (includes
  /// receive-ring backpressure on two-sided transports).
  kCompleted = 4,
};
inline constexpr int kNumSpanStages = 5;
/// Sentinel for a stage that has not been recorded.
inline constexpr double kSpanUnset = -1.0;

/// One work request's lifecycle. Times are full-scale virtual seconds on the
/// replay clock; kSpanUnset marks stages not reached (e.g. a span evicted
/// from the ring mid-flight, or a snapshot taken mid-replay).
struct WrSpan {
  /// 1-based recorder-assigned id; 0 marks an empty ring slot. Ids are also
  /// the causal flow-edge ids in the Chrome trace export.
  uint64_t id = 0;
  uint32_t machine = 0;  ///< Issuing machine.
  uint32_t thread = 0;   ///< Issuing partitioning thread (machine-local).
  uint32_t slot = 0;     ///< Double-buffering credit slot (partition id).
  uint32_t src = 0;      ///< Machine whose egress port the bytes leave.
  uint32_t dst = 0;      ///< Destination machine.
  double wire_bytes = 0;  ///< Virtual (full-scale) bytes on the wire.
  /// Fabric flow id (LinkFabric message id); joins to FlowSegment::flow.
  uint64_t flow = 0;
  /// True for RDMA READ pulls (the issuer is the destination).
  bool pull = false;
  double stage[kNumSpanStages] = {kSpanUnset, kSpanUnset, kSpanUnset,
                                  kSpanUnset, kSpanUnset};
  /// Receiver-core service window (two-sided transports only).
  double recv_start = kSpanUnset;
  double recv_end = kSpanUnset;
  /// Fault-recovery annotation (src/fault/): completed send attempts beyond
  /// the first and the timeout + backoff seconds they cost. Both stay 0 on
  /// fault-free runs and are then omitted from the JSON export.
  uint32_t retries = 0;
  double retry_delay_seconds = 0;

  bool complete() const {
    for (double t : stage) {
      if (t == kSpanUnset) return false;
    }
    return true;
  }
  /// Posted -> completed; kSpanUnset if either end is missing.
  double duration() const {
    if (stage[0] == kSpanUnset || stage[kNumSpanStages - 1] == kSpanUnset) {
      return kSpanUnset;
    }
    return stage[kNumSpanStages - 1] - stage[0];
  }
  /// Seconds spent in the stage interval *ending* at `s` (0 for kPosted):
  /// credit wait, post overhead, fabric transit, completion wait. The four
  /// intervals sum to duration() by construction.
  double StageSeconds(SpanStage s) const {
    const int i = static_cast<int>(s);
    if (i == 0) return 0;
    if (stage[i] == kSpanUnset || stage[i - 1] == kSpanUnset) return kSpanUnset;
    return stage[i] - stage[i - 1];
  }
};

const char* SpanStageName(SpanStage stage);

/// One constant-rate interval of a fabric flow (see FlowTelemetry). Adjacent
/// intervals of a flow are merged by the recorder only when both the rate
/// and the binding constraint are unchanged, so a flow's segments enumerate
/// exactly its reshare events *and* its constraint transitions (a reshare
/// can switch the binding constraint while the rate stays numerically
/// identical -- e.g. egress and ingress shares crossing over).
struct FlowSegment {
  uint64_t flow = 0;
  uint32_t src = 0;
  uint32_t dst = 0;
  double t0 = 0;
  double t1 = 0;
  double rate = 0;  ///< bytes/second
  /// The fair-share constraint binding over [t0, t1) and the host owning it
  /// (sim/rate_sharing.h). kNone on datasets read from schema v1 documents
  /// or recorded with SpanConfig::record_constraints off.
  RateConstraint bound = RateConstraint::kNone;
  uint32_t bound_host = 0;
};

/// Per-thread replay totals, recorded once at the end of the network pass;
/// lets span queries cross-validate against the PR 3 attribution (a
/// machine's buffer-stall seconds are its lead thread's credit stalls).
struct ThreadMark {
  uint32_t machine = 0;
  uint32_t thread = 0;
  double finish_seconds = 0;
  double compute_seconds = 0;
  double credit_stall_seconds = 0;
  double flow_stall_seconds = 0;
  /// Virtual seconds of this thread's timeline spent in fault recovery
  /// (straggler slowdown excess plus transport retry delays); 0 and omitted
  /// from the JSON in fault-free runs.
  double fault_recovery_seconds = 0;
};

/// Ordinal work-request counts from the execution layer (which is eager and
/// has no clock): per-opcode posted / delivered / polled, indexed by
/// WorkCompletion::Op, plus buffer-pool credit transitions.
struct ExecDeviceCounts {
  uint32_t device = 0;
  uint64_t posted[4] = {0, 0, 0, 0};
  uint64_t completed[4] = {0, 0, 0, 0};
  uint64_t failed_completions = 0;
  uint64_t polled[4] = {0, 0, 0, 0};
  uint64_t buffers_acquired = 0;
  uint64_t buffers_released = 0;
};

/// A self-contained snapshot of everything the recorder captured; the unit
/// of JSON export and of the query engine (timing/span_query.h).
struct SpanDataset {
  /// Surviving spans in id order (drops leave gaps at the low end).
  std::vector<WrSpan> spans;
  /// Flow-rate segments in recording order.
  std::vector<FlowSegment> segments;
  /// Per-thread totals in (machine, thread) order.
  std::vector<ThreadMark> threads;
  /// Execution-layer counts in device order.
  std::vector<ExecDeviceCounts> devices;
  uint64_t spans_recorded = 0;
  uint64_t spans_dropped = 0;
  uint64_t segments_recorded = 0;
  uint64_t segments_dropped = 0;
  /// Stage updates that arrived after their span was evicted.
  uint64_t late_stage_updates = 0;
};

/// The causal span flight recorder. One instance observes one replay (plus,
/// optionally, the execution layer's devices): the timing replay begins a
/// span per posted send and marks its stages as virtual time advances, the
/// fabric reports per-flow rate segments through the FlowTelemetry
/// interface, and the verbs layer reports ordinal post/poll/credit counts
/// through RdmaEventSink.
///
/// Recording is O(1) per event into fixed-capacity rings sized by
/// SpanConfig::max_bytes -- overhead is bounded no matter how long the
/// replay runs. Eviction is deterministic (oldest id first) and counted;
/// the first overflow emits one RDMAJOIN_LOG warning per recorder. The
/// recorder is passive: it never feeds back into the simulation, so enabling
/// or disabling it cannot change any replayed time.
class SpanRecorder : public FlowTelemetry, public RdmaEventSink {
 public:
  explicit SpanRecorder(const SpanConfig& config = SpanConfig());

  bool enabled() const { return config_.enabled; }
  const SpanConfig& config() const { return config_; }
  size_t span_capacity() const { return span_capacity_; }
  size_t segment_capacity() const { return segment_capacity_; }

  /// Opens a span for a posted send; returns its id (0 when disabled).
  uint64_t BeginSpan(uint32_t machine, uint32_t thread, uint32_t slot,
                     uint32_t src, uint32_t dst, double wire_bytes, bool pull,
                     double posted_time);
  /// Records `stage` at `time`; ignored (and counted late) if the span was
  /// already evicted.
  void MarkStage(uint64_t id, SpanStage stage, double time);
  /// Attaches the fabric flow id carrying this span's bytes.
  void SetFlow(uint64_t id, uint64_t flow);
  /// Records the receiver-core service window (two-sided transports).
  void SetReceiverService(uint64_t id, double start, double end);
  /// Annotates the span with its transport-layer retry cost (src/fault/).
  void SetFaultInfo(uint64_t id, uint32_t retries, double retry_delay_seconds);
  /// Records one thread's end-of-pass totals.
  void AddThreadMark(const ThreadMark& mark);

  // FlowTelemetry:
  void OnFlowSegment(uint64_t flow_id, uint32_t src, uint32_t dst, double t0,
                     double t1, double rate, RateConstraint bound,
                     uint32_t bound_host) override;

  // RdmaEventSink:
  void OnWrPosted(uint32_t device, WorkCompletion::Op op) override;
  void OnWrCompleted(uint32_t device, WorkCompletion::Op op,
                     bool success) override;
  void OnCompletionPolled(uint32_t device, WorkCompletion::Op op) override;
  void OnBufferCredit(uint32_t device, bool acquired) override;

  uint64_t spans_recorded() const { return spans_recorded_; }
  uint64_t spans_dropped() const { return spans_dropped_; }
  uint64_t segments_recorded() const { return segments_recorded_; }
  uint64_t segments_dropped() const { return segments_dropped_; }
  uint64_t late_stage_updates() const { return late_stage_updates_; }

  /// Materializes the current contents (spans sorted by id, segments in
  /// recording order).
  SpanDataset Snapshot() const;

 private:
  /// The ring slot owning `id`, or nullptr if the id was never recorded or
  /// has been evicted.
  WrSpan* Find(uint64_t id);
  void WarnOnFirstDrop(const char* what);

  SpanConfig config_;
  size_t span_capacity_ = 0;
  size_t segment_capacity_ = 0;
  uint64_t next_id_ = 1;
  /// Backs the merge index (and its rehashes) so the per-segment hot path --
  /// one OnFlowSegment call per fabric reshare per flow -- never touches
  /// malloc. Declared before the map: the map holds a pointer into it.
  Arena arena_;
  /// Span ring: id occupies slot (id - 1) % span_capacity_; an overwrite
  /// evicts the previous occupant (exactly span_capacity_ ids older).
  std::vector<WrSpan> spans_;
  /// Segment FIFO ring.
  std::vector<FlowSegment> segments_;
  size_t segment_next_ = 0;
  /// Last segment index per flow (flow ids start at 1), for contiguous
  /// same-rate merging. Entries may go stale after eviction; validated
  /// against the stored flow id.
  FlatMap<uint64_t, uint64_t> last_segment_of_flow_{&arena_, 256};
  std::vector<ThreadMark> threads_;
  /// Keyed by device id for deterministic snapshot order.
  std::map<uint32_t, ExecDeviceCounts> devices_;
  uint64_t spans_recorded_ = 0;
  uint64_t spans_dropped_ = 0;
  uint64_t segments_recorded_ = 0;
  uint64_t segments_dropped_ = 0;
  uint64_t late_stage_updates_ = 0;
  bool warned_overflow_ = false;
};

/// Serializes a dataset as one deterministic JSON document (shortest
/// round-trip numbers, kSpanUnset stages as -1). Schema version 2 -- each
/// segment gains "bound" (a RateConstraintName) and "bound_host" -- is
/// emitted only when at least one segment carries a constraint label;
/// datasets without labels (recording off, or none recorded) serialize as
/// the exact schema-version-1 bytes, keeping constraint-free outputs
/// byte-identical across the schema bump.
std::string SpanDatasetToJson(const SpanDataset& dataset);
/// Rebuilds a dataset from a parsed document. Accepts schema versions 1
/// (segments get RateConstraint::kNone) and 2.
StatusOr<SpanDataset> SpanDatasetFromJson(const JsonValue& root);
/// ParseJson + SpanDatasetFromJson.
StatusOr<SpanDataset> ParseSpanDatasetJson(const std::string& text);

/// Writes/reads SpanDatasetToJson to/from a file.
Status WriteSpanDatasetFile(const std::string& path, const SpanDataset& dataset);
StatusOr<SpanDataset> ReadSpanDatasetFile(const std::string& path);

}  // namespace rdmajoin

#endif  // RDMAJOIN_TIMING_SPAN_TRACE_H_
