#include "timing/utilization.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/json.h"

namespace rdmajoin {

namespace {

double PhaseSeconds(const PhaseTimes& t, JoinPhase phase) {
  switch (phase) {
    case JoinPhase::kHistogram:
      return t.histogram_seconds;
    case JoinPhase::kNetworkPartition:
      return t.network_partition_seconds;
    case JoinPhase::kLocalPartition:
      return t.local_partition_seconds;
    case JoinPhase::kBuildProbe:
      return t.build_probe_seconds;
  }
  return 0;
}

/// The lead partitioning thread per machine: strict max finish time,
/// first-on-tie in the dataset's (machine, thread) order -- the same
/// tie-break the replay uses when it copies the lead thread's credit stalls
/// into the attribution's buffer_stall bucket.
std::vector<const ThreadMark*> LeadThreads(const SpanDataset& dataset,
                                           size_t num_machines) {
  std::vector<const ThreadMark*> lead(num_machines, nullptr);
  for (const ThreadMark& t : dataset.threads) {
    if (t.machine >= num_machines) continue;
    if (lead[t.machine] == nullptr ||
        t.finish_seconds > lead[t.machine]->finish_seconds) {
      lead[t.machine] = &t;
    }
  }
  return lead;
}

/// Adds `sign` x (overlap with [t0, t1] / bucket width) to every bucket the
/// interval touches.
void AddIntervalFraction(std::vector<double>* buckets, double bucket_seconds,
                         double t0, double t1, double sign) {
  if (buckets->empty() || bucket_seconds <= 0 || t1 <= t0) return;
  const double horizon = bucket_seconds * static_cast<double>(buckets->size());
  t0 = std::max(t0, 0.0);
  t1 = std::min(t1, horizon);
  if (t1 <= t0) return;
  size_t b = static_cast<size_t>(t0 / bucket_seconds);
  if (b >= buckets->size()) return;
  double t = t0;
  while (t < t1 && b < buckets->size()) {
    const double edge = bucket_seconds * static_cast<double>(b + 1);
    const double upto = std::min(edge, t1);
    (*buckets)[b] += sign * (upto - t) / bucket_seconds;
    t = upto;
    ++b;
  }
}

}  // namespace

std::string_view IdleCauseName(IdleCause cause) {
  switch (cause) {
    case IdleCause::kBarrierWait:
      return "barrier_wait";
    case IdleCause::kBufferStall:
      return "buffer_stall";
    case IdleCause::kNetworkTail:
      return "network_tail";
  }
  return "unknown";
}

double UtilizationReport::WindowSeconds(uint32_t machine, IdleCause cause) const {
  double total = 0;
  for (const IdleWindow& w : idle_windows) {
    if (w.machine == machine && w.cause == cause) total += w.seconds();
  }
  return total;
}

UtilizationReport ComputeUtilization(const ReplayReport& replay,
                                     const SpanDataset* spans,
                                     const UtilizationOptions& options) {
  UtilizationReport report;
  const AttributionReport& attribution = replay.attribution;
  const size_t nm =
      std::max(attribution.machines.size(), replay.machine_phases.size());

  report.phase_edges[0] = 0;
  for (size_t p = 0; p < kNumJoinPhases; ++p) {
    report.phase_edges[p + 1] =
        report.phase_edges[p] +
        PhaseSeconds(attribution.phases, static_cast<JoinPhase>(p));
  }
  report.makespan_seconds = report.phase_edges[kNumJoinPhases];

  // Snapshot the replay's own recorder when the caller did not hand us a
  // dataset explicitly.
  SpanDataset snapshot;
  if (spans == nullptr && replay.spans != nullptr) {
    snapshot = replay.spans->Snapshot();
    spans = &snapshot;
  }
  // Span-derived positions are only trustworthy when nothing was evicted
  // from the flight recorder: a partial ring would under-count the stalls.
  const bool spans_usable = spans != nullptr && spans->spans_dropped == 0 &&
                            !spans->threads.empty();
  report.stall_windows_from_spans = spans_usable;

  const double net0 = report.phase_edges[1];  // Network-pass phase start.
  std::vector<const ThreadMark*> lead =
      spans_usable ? LeadThreads(*spans, nm)
                   : std::vector<const ThreadMark*>(nm, nullptr);

  for (size_t m = 0; m < nm; ++m) {
    MachineUtilization mu;
    mu.machine = static_cast<uint32_t>(m);
    if (m < replay.machine_phases.size()) {
      mu.active_seconds = replay.machine_phases[m].TotalSeconds();
    }

    // 1. Barrier-wait windows: anchored at the global phase end, sized
    //    bit-for-bit from the attribution bucket, so the totals identity
    //    cannot drift no matter how the replay computed the wait.
    if (m < attribution.machines.size()) {
      for (size_t p = 0; p < kNumJoinPhases; ++p) {
        const double wait =
            attribution.machines[m].phases[p].barrier_wait_seconds;
        if (wait <= 0) continue;
        IdleWindow w;
        w.machine = mu.machine;
        w.phase = static_cast<JoinPhase>(p);
        w.cause = IdleCause::kBarrierWait;
        w.t1 = report.phase_edges[p + 1];
        w.t0 = w.t1 - wait;
        report.idle_windows.push_back(w);
        mu.barrier_wait_seconds += wait;
      }
    }

    // 2. Buffer-stall windows: the lead thread's credit-blocked sends, read
    //    straight off its spans' posted -> credit-acquired intervals. Falls
    //    back to one synthetic window sized exactly to the attribution
    //    bucket when the span positions are unavailable or lossy.
    const double attributed_stall =
        m < attribution.machines.size()
            ? attribution.machines[m]
                  .at(JoinPhase::kNetworkPartition)
                  .buffer_stall_seconds
            : 0.0;
    std::vector<IdleWindow> stalls;
    double stall_sum = 0;
    if (spans_usable && lead[m] != nullptr) {
      for (const WrSpan& s : spans->spans) {
        if (s.machine != m || s.thread != lead[m]->thread) continue;
        if (s.stage[0] == kSpanUnset || s.stage[1] == kSpanUnset) continue;
        if (s.stage[1] <= s.stage[0]) continue;
        IdleWindow w;
        w.machine = mu.machine;
        w.phase = JoinPhase::kNetworkPartition;
        w.cause = IdleCause::kBufferStall;
        w.t0 = net0 + s.stage[0];
        w.t1 = net0 + s.stage[1];
        stalls.push_back(w);
        stall_sum += w.seconds();
      }
    }
    if (std::fabs(stall_sum - attributed_stall) > 1e-9) {
      // Positions unknown (or a mid-thread eviction broke the identity):
      // replace with one window of exactly the attributed duration.
      stalls.clear();
      stall_sum = 0;
      if (attributed_stall > 0) {
        IdleWindow w;
        w.machine = mu.machine;
        w.phase = JoinPhase::kNetworkPartition;
        w.cause = IdleCause::kBufferStall;
        w.t0 = net0;
        w.t1 = net0 + attributed_stall;
        stalls.push_back(w);
        stall_sum = attributed_stall;
      }
      report.stall_windows_from_spans = false;
    }
    for (const IdleWindow& w : stalls) report.idle_windows.push_back(w);
    mu.buffer_stall_seconds = stall_sum;

    // 3. Network-tail window: partitioning threads done, receiver core /
    //    inbound transfers still draining. Positions come from the spans'
    //    delivery / service / completion events; without spans the tail is
    //    folded into the attribution's network bucket and not windowed.
    if (spans != nullptr && m < replay.net_thread_finish_seconds.size()) {
      const double finish = replay.net_thread_finish_seconds[m];
      double last_net = finish;
      for (const WrSpan& s : spans->spans) {
        if (s.dst == m) {
          if (s.stage[3] != kSpanUnset) last_net = std::max(last_net, s.stage[3]);
          if (s.recv_end != kSpanUnset) last_net = std::max(last_net, s.recv_end);
        }
        if (s.machine == m && s.stage[4] != kSpanUnset) {
          last_net = std::max(last_net, s.stage[4]);
        }
      }
      if (last_net > finish) {
        IdleWindow w;
        w.machine = mu.machine;
        w.phase = JoinPhase::kNetworkPartition;
        w.cause = IdleCause::kNetworkTail;
        w.t0 = net0 + finish;
        w.t1 = net0 + last_net;
        report.idle_windows.push_back(w);
        mu.network_tail_seconds = w.seconds();
      }
    }

    report.machines.push_back(mu);
  }

  std::sort(report.idle_windows.begin(), report.idle_windows.end(),
            [](const IdleWindow& a, const IdleWindow& b) {
              if (a.machine != b.machine) return a.machine < b.machine;
              if (a.t0 != b.t0) return a.t0 < b.t0;
              return static_cast<int>(a.cause) < static_cast<int>(b.cause);
            });

  // Occupancy timelines.
  const size_t nbuckets = std::max<size_t>(1, options.timeline_buckets);
  if (report.makespan_seconds > 0) {
    const double bw = report.makespan_seconds / static_cast<double>(nbuckets);
    for (size_t m = 0; m < nm; ++m) {
      HostTimeline tl;
      tl.machine = static_cast<uint32_t>(m);
      tl.bucket_seconds = bw;
      tl.compute_busy.assign(nbuckets, 0.0);
      tl.egress_bytes_per_sec.assign(nbuckets, 0.0);
      tl.ingress_bytes_per_sec.assign(nbuckets, 0.0);
      if (m < replay.machine_phases.size()) {
        for (size_t p = 0; p < kNumJoinPhases; ++p) {
          const double mine = PhaseSeconds(replay.machine_phases[m],
                                           static_cast<JoinPhase>(p));
          AddIntervalFraction(&tl.compute_busy, bw, report.phase_edges[p],
                              report.phase_edges[p] + mine, +1.0);
        }
      }
      // Idle sub-intervals of the machine's own activity (credit stalls and
      // the network tail) are not compute; barrier waits lie outside the
      // machine's activity interval already.
      for (const IdleWindow& w : report.idle_windows) {
        if (w.machine != m || w.cause == IdleCause::kBarrierWait) continue;
        AddIntervalFraction(&tl.compute_busy, bw, w.t0, w.t1, -1.0);
      }
      for (double& v : tl.compute_busy) v = std::clamp(v, 0.0, 1.0);
      if (spans != nullptr) {
        for (const FlowSegment& seg : spans->segments) {
          const double t0 = net0 + seg.t0;
          const double t1 = net0 + seg.t1;
          if (seg.src == m) {
            AddIntervalFraction(&tl.egress_bytes_per_sec, bw, t0, t1, seg.rate);
          }
          if (seg.dst == m) {
            AddIntervalFraction(&tl.ingress_bytes_per_sec, bw, t0, t1, seg.rate);
          }
        }
      }
      report.timelines.push_back(std::move(tl));
    }
  }
  return report;
}

UtilizationCheck CheckUtilization(const UtilizationReport& report,
                                  const AttributionReport& attribution,
                                  double tolerance) {
  UtilizationCheck check;
  auto violate = [&check](const std::string& what) {
    check.violations.push_back(what);
  };

  // 4. Phase edges accumulate the global phase times.
  double edge = 0;
  for (size_t p = 0; p < kNumJoinPhases; ++p) {
    edge += PhaseSeconds(attribution.phases, static_cast<JoinPhase>(p));
    if (std::fabs(report.phase_edges[p + 1] - edge) > tolerance) {
      violate("phase edge " + std::to_string(p + 1) + " is " +
              std::to_string(report.phase_edges[p + 1]) +
              ", expected cumulative " + std::to_string(edge));
    }
  }

  // 3. Window sanity + ordering.
  for (size_t i = 0; i < report.idle_windows.size(); ++i) {
    const IdleWindow& w = report.idle_windows[i];
    const std::string tag = "window " + std::to_string(i) + " (machine " +
                            std::to_string(w.machine) + ", " +
                            std::string(IdleCauseName(w.cause)) + ")";
    if (w.t0 < -tolerance || w.t1 < w.t0 ||
        w.t1 > report.makespan_seconds + tolerance) {
      violate(tag + ": interval [" + std::to_string(w.t0) + ", " +
              std::to_string(w.t1) + "] escapes [0, makespan]");
    }
    if (i > 0) {
      const IdleWindow& prev = report.idle_windows[i - 1];
      const bool ordered =
          prev.machine < w.machine ||
          (prev.machine == w.machine &&
           (prev.t0 < w.t0 ||
            (prev.t0 == w.t0 &&
             static_cast<int>(prev.cause) <= static_cast<int>(w.cause))));
      if (!ordered) violate(tag + ": windows not sorted by (machine, t0, cause)");
    }
  }

  // 1 + 2. The per-machine totals identities against the attribution.
  if (report.machines.size() != attribution.machines.size()) {
    violate("report covers " + std::to_string(report.machines.size()) +
            " machine(s), attribution has " +
            std::to_string(attribution.machines.size()));
  }
  const size_t nm =
      std::min(report.machines.size(), attribution.machines.size());
  for (size_t m = 0; m < nm; ++m) {
    double attributed_barrier = 0;
    for (size_t p = 0; p < kNumJoinPhases; ++p) {
      attributed_barrier += attribution.machines[m].phases[p].barrier_wait_seconds;
    }
    const double windowed_barrier =
        report.WindowSeconds(static_cast<uint32_t>(m), IdleCause::kBarrierWait);
    if (std::fabs(windowed_barrier - attributed_barrier) > tolerance) {
      violate("machine " + std::to_string(m) + ": barrier-wait windows sum to " +
              std::to_string(windowed_barrier) + " s, attribution says " +
              std::to_string(attributed_barrier) + " s");
    }
    const double attributed_stall = attribution.machines[m]
                                        .at(JoinPhase::kNetworkPartition)
                                        .buffer_stall_seconds;
    const double windowed_stall =
        report.WindowSeconds(static_cast<uint32_t>(m), IdleCause::kBufferStall);
    if (std::fabs(windowed_stall - attributed_stall) > tolerance) {
      violate("machine " + std::to_string(m) + ": buffer-stall windows sum to " +
              std::to_string(windowed_stall) + " s, attribution says " +
              std::to_string(attributed_stall) + " s");
    }
    // The struct totals must agree with the windows they summarize.
    if (std::fabs(report.machines[m].barrier_wait_seconds - windowed_barrier) >
            tolerance ||
        std::fabs(report.machines[m].buffer_stall_seconds - windowed_stall) >
            tolerance) {
      violate("machine " + std::to_string(m) +
              ": per-machine totals disagree with the window list");
    }
  }
  return check;
}

std::string FormatUtilization(const UtilizationReport& report, size_t top_k) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "utilization: makespan %.6f s, %zu idle window(s), stall "
                "windows %s\n",
                report.makespan_seconds, report.idle_windows.size(),
                report.stall_windows_from_spans ? "from spans"
                                                : "synthetic (attribution-sized)");
  out += buf;

  double total_by_cause[kNumIdleCauses] = {0, 0, 0};
  for (const MachineUtilization& m : report.machines) {
    total_by_cause[0] += m.barrier_wait_seconds;
    total_by_cause[1] += m.buffer_stall_seconds;
    total_by_cause[2] += m.network_tail_seconds;
  }
  out += "per-machine busy/idle split (seconds):\n";
  out += "  machine   active  barrier_wait  buffer_stall  network_tail  idle  busy\n";
  for (const MachineUtilization& m : report.machines) {
    const double denom =
        report.makespan_seconds > 0 ? report.makespan_seconds : 1.0;
    std::snprintf(buf, sizeof(buf),
                  "  %-7u %8.3f %13.3f %13.3f %13.3f %5.3f %5.1f%%\n", m.machine,
                  m.active_seconds, m.barrier_wait_seconds,
                  m.buffer_stall_seconds, m.network_tail_seconds,
                  m.IdleSeconds(), 100 * (1.0 - m.IdleSeconds() / denom));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "idle totals: barrier_wait %.3f s, buffer_stall %.3f s, "
                "network_tail %.3f s\n",
                total_by_cause[0], total_by_cause[1], total_by_cause[2]);
  out += buf;

  // Top-k longest windows: the co-scheduling opportunities, biggest first.
  std::vector<const IdleWindow*> longest;
  longest.reserve(report.idle_windows.size());
  for (const IdleWindow& w : report.idle_windows) longest.push_back(&w);
  std::stable_sort(longest.begin(), longest.end(),
                   [](const IdleWindow* a, const IdleWindow* b) {
                     return a->seconds() > b->seconds();
                   });
  if (longest.size() > top_k) longest.resize(top_k);
  out += "longest idle windows (co-scheduling opportunities):\n";
  for (const IdleWindow* w : longest) {
    std::snprintf(buf, sizeof(buf),
                  "  machine %-3u %-18s %-13s [%10.6f, %10.6f]  %8.6f s\n",
                  w->machine, std::string(JoinPhaseName(w->phase)).c_str(),
                  std::string(IdleCauseName(w->cause)).c_str(), w->t0, w->t1,
                  w->seconds());
    out += buf;
  }
  return out;
}

std::string UtilizationToJson(const UtilizationReport& report) {
  std::string out = "{\"schema_version\":1";
  out += ",\"makespan_seconds\":" + JsonNumber(report.makespan_seconds);
  out += ",\"stall_windows_from_spans\":";
  out += report.stall_windows_from_spans ? "true" : "false";
  out += ",\"phase_edges\":[";
  for (size_t p = 0; p <= kNumJoinPhases; ++p) {
    if (p > 0) out += ",";
    out += JsonNumber(report.phase_edges[p]);
  }
  out += "],\"machines\":[";
  for (size_t m = 0; m < report.machines.size(); ++m) {
    const MachineUtilization& mu = report.machines[m];
    if (m > 0) out += ",";
    out += "{\"machine\":" + JsonNumber(mu.machine);
    out += ",\"active_seconds\":" + JsonNumber(mu.active_seconds);
    out += ",\"barrier_wait_seconds\":" + JsonNumber(mu.barrier_wait_seconds);
    out += ",\"buffer_stall_seconds\":" + JsonNumber(mu.buffer_stall_seconds);
    out += ",\"network_tail_seconds\":" + JsonNumber(mu.network_tail_seconds);
    out += "}";
  }
  out += "],\"idle_windows\":[";
  for (size_t i = 0; i < report.idle_windows.size(); ++i) {
    const IdleWindow& w = report.idle_windows[i];
    if (i > 0) out += ",";
    out += "{\"machine\":" + JsonNumber(w.machine);
    out += ",\"phase\":\"" + std::string(JoinPhaseName(w.phase)) + "\"";
    out += ",\"cause\":\"" + std::string(IdleCauseName(w.cause)) + "\"";
    out += ",\"t0\":" + JsonNumber(w.t0);
    out += ",\"t1\":" + JsonNumber(w.t1);
    out += "}";
  }
  out += "],\"timelines\":[";
  for (size_t m = 0; m < report.timelines.size(); ++m) {
    const HostTimeline& tl = report.timelines[m];
    if (m > 0) out += ",";
    out += "{\"machine\":" + JsonNumber(tl.machine);
    out += ",\"bucket_seconds\":" + JsonNumber(tl.bucket_seconds);
    auto array = [&out](const char* key, const std::vector<double>& v) {
      out += ",\"";
      out += key;
      out += "\":[";
      for (size_t i = 0; i < v.size(); ++i) {
        if (i > 0) out += ",";
        out += JsonNumber(v[i]);
      }
      out += "]";
    };
    array("compute_busy", tl.compute_busy);
    array("egress_bytes_per_sec", tl.egress_bytes_per_sec);
    array("ingress_bytes_per_sec", tl.ingress_bytes_per_sec);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace rdmajoin
