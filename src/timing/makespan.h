#ifndef RDMAJOIN_TIMING_MAKESPAN_H_
#define RDMAJOIN_TIMING_MAKESPAN_H_

#include <cstdint>
#include <vector>

namespace rdmajoin {

/// Longest-processing-time-first list scheduling: tasks are sorted by
/// decreasing cost and greedily assigned to the least-loaded worker. Models
/// the per-NUMA-region task queues of the build/probe phase; the returned
/// makespan is the phase time of one machine.
double LptMakespan(const std::vector<double>& task_seconds, uint32_t workers);

}  // namespace rdmajoin

#endif  // RDMAJOIN_TIMING_MAKESPAN_H_
