#include "timing/chrome_trace.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace rdmajoin {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

double Micros(double seconds) { return seconds * 1e6; }

/// One "X" (complete) slice on machine `pid`.
void AppendSlice(std::string* out, bool* first, const char* name, uint32_t pid,
                 double start_seconds, double duration_seconds) {
  if (!*first) out->append(",");
  *first = false;
  out->append("{\"name\":\"");
  out->append(name);
  out->append("\",\"ph\":\"X\",\"pid\":");
  out->append(std::to_string(pid));
  out->append(",\"tid\":0,\"ts\":");
  AppendDouble(out, Micros(start_seconds));
  out->append(",\"dur\":");
  AppendDouble(out, Micros(duration_seconds));
  out->append("}");
}

/// One "C" (counter) sample on machine `pid`.
void AppendCounter(std::string* out, bool* first, const char* name, uint32_t pid,
                   double ts_seconds, double value) {
  if (!*first) out->append(",");
  *first = false;
  out->append("{\"name\":\"");
  out->append(name);
  out->append("\",\"ph\":\"C\",\"pid\":");
  out->append(std::to_string(pid));
  out->append(",\"ts\":");
  AppendDouble(out, Micros(ts_seconds));
  out->append(",\"args\":{\"MB/s\":");
  AppendDouble(out, value);
  out->append("}}");
}

/// Emits the utilization counter track of one host from its activity
/// timeline. Fabric time zero is the network-phase barrier, so samples are
/// shifted by `offset_seconds`.
void AppendUtilization(std::string* out, bool* first, const char* name,
                       uint32_t pid, const TimeSeries& series,
                       double offset_seconds) {
  const std::vector<double>& buckets = series.buckets();
  const double width = series.bucket_seconds();
  if (buckets.empty() || width <= 0) return;
  for (size_t b = 0; b < buckets.size(); ++b) {
    const double rate_mb = buckets[b] / width / 1e6;
    AppendCounter(out, first, name, pid,
                  offset_seconds + static_cast<double>(b) * width, rate_mb);
  }
  // Close the track so the last bucket does not extend forever.
  AppendCounter(out, first, name, pid,
                offset_seconds + static_cast<double>(buckets.size()) * width,
                0.0);
}

}  // namespace

std::string ChromeTraceJson(const ReplayReport& report,
                            const MetricsRegistry* metrics) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const uint32_t nm = static_cast<uint32_t>(report.machine_phases.size());

  // Barrier starts: each phase begins globally when the slowest machine has
  // finished the previous one.
  const double hist_start = 0.0;
  const double net_start = report.phases.histogram_seconds;
  const double local_start = net_start + report.phases.network_partition_seconds;
  const double bp_start = local_start + report.phases.local_partition_seconds;

  for (uint32_t m = 0; m < nm; ++m) {
    if (!first) out.append(",");
    first = false;
    out.append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
    out.append(std::to_string(m));
    out.append(",\"args\":{\"name\":\"machine");
    out.append(std::to_string(m));
    out.append("\"}}");
    const PhaseTimes& p = report.machine_phases[m];
    AppendSlice(&out, &first, "histogram", m, hist_start, p.histogram_seconds);
    AppendSlice(&out, &first, "network_partition", m, net_start,
                p.network_partition_seconds);
    AppendSlice(&out, &first, "local_partition", m, local_start,
                p.local_partition_seconds);
    AppendSlice(&out, &first, "build_probe", m, bp_start, p.build_probe_seconds);
  }

  if (metrics != nullptr) {
    for (uint32_t h = 0; h < nm; ++h) {
      const std::string host = "fabric.host" + std::to_string(h);
      const TimeSeries* egress =
          metrics->FindTimeSeries(host + ".egress_active_bytes");
      const TimeSeries* ingress =
          metrics->FindTimeSeries(host + ".ingress_active_bytes");
      if (egress != nullptr) {
        AppendUtilization(&out, &first, "egress MB/s", h, *egress, net_start);
      }
      if (ingress != nullptr) {
        AppendUtilization(&out, &first, "ingress MB/s", h, *ingress, net_start);
      }
    }
  }

  out.append("]}");
  return out;
}

Status WriteChromeTraceFile(const std::string& path, const ReplayReport& report,
                            const MetricsRegistry* metrics) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  const std::string json = ChromeTraceJson(report, metrics);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

}  // namespace rdmajoin
