#include "timing/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fault/schedule.h"
#include "timing/span_query.h"
#include "timing/span_trace.h"
#include "util/json.h"
#include "util/metrics.h"

namespace rdmajoin {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

double Micros(double seconds) { return seconds * 1e6; }

/// The single JSON string-literal emitter: every name, label, or other
/// free-form string in the trace goes through here (and so through
/// util/json's JsonEscape) -- no call site builds a quoted string by hand.
void AppendString(std::string* out, const std::string& s) {
  out->append("\"");
  out->append(JsonEscape(s));
  out->append("\"");
}

/// One "X" (complete) slice.
void AppendSlice(std::string* out, bool* first, const std::string& name,
                 uint32_t pid, uint32_t tid, double start_seconds,
                 double duration_seconds, const std::string& args_json = "") {
  if (!*first) out->append(",");
  *first = false;
  out->append("{\"name\":");
  AppendString(out, name);
  out->append(",\"ph\":\"X\",\"pid\":");
  out->append(std::to_string(pid));
  out->append(",\"tid\":");
  out->append(std::to_string(tid));
  out->append(",\"ts\":");
  AppendDouble(out, Micros(start_seconds));
  out->append(",\"dur\":");
  AppendDouble(out, Micros(duration_seconds));
  if (!args_json.empty()) {
    out->append(",\"args\":{");
    out->append(args_json);
    out->append("}");
  }
  out->append("}");
}

/// One "C" (counter) sample on machine `pid`.
void AppendCounter(std::string* out, bool* first, const std::string& name,
                   uint32_t pid, double ts_seconds, double value) {
  if (!*first) out->append(",");
  *first = false;
  out->append("{\"name\":");
  AppendString(out, name);
  out->append(",\"ph\":\"C\",\"pid\":");
  out->append(std::to_string(pid));
  out->append(",\"ts\":");
  AppendDouble(out, Micros(ts_seconds));
  out->append(",\"args\":{\"MB/s\":");
  AppendDouble(out, value);
  out->append("}}");
}

/// One flow event: ph "s" (start) at the sender slice or ph "f" (end,
/// binding point "e" = enclosing slice) at the receiver slice. The pair is
/// keyed by the span id; Perfetto draws the arrow between the slices that
/// enclose the two timestamps.
void AppendFlow(std::string* out, bool* first, bool start, uint64_t id,
                uint32_t pid, uint32_t tid, double ts_seconds) {
  if (!*first) out->append(",");
  *first = false;
  out->append("{\"name\":");
  AppendString(out, "wr");
  out->append(",\"cat\":");
  AppendString(out, "wr");
  out->append(start ? ",\"ph\":\"s\"" : ",\"ph\":\"f\",\"bp\":\"e\"");
  out->append(",\"id\":");
  out->append(std::to_string(id));
  out->append(",\"pid\":");
  out->append(std::to_string(pid));
  out->append(",\"tid\":");
  out->append(std::to_string(tid));
  out->append(",\"ts\":");
  AppendDouble(out, Micros(ts_seconds));
  out->append("}");
}

/// One "i" (instant) event on a thread row (scope "t").
void AppendInstant(std::string* out, bool* first, const std::string& name,
                   uint32_t pid, uint32_t tid, double ts_seconds) {
  if (!*first) out->append(",");
  *first = false;
  out->append("{\"name\":");
  AppendString(out, name);
  out->append(",\"ph\":\"i\",\"s\":\"t\",\"pid\":");
  out->append(std::to_string(pid));
  out->append(",\"tid\":");
  out->append(std::to_string(tid));
  out->append(",\"ts\":");
  AppendDouble(out, Micros(ts_seconds));
  out->append("}");
}

/// "M" metadata event naming a process or thread row.
void AppendNameMeta(std::string* out, bool* first, const char* what,
                    uint32_t pid, int tid, const std::string& name) {
  if (!*first) out->append(",");
  *first = false;
  out->append("{\"name\":");
  AppendString(out, what);
  out->append(",\"ph\":\"M\",\"pid\":");
  out->append(std::to_string(pid));
  if (tid >= 0) {
    out->append(",\"tid\":");
    out->append(std::to_string(tid));
  }
  out->append(",\"args\":{\"name\":");
  AppendString(out, name);
  out->append("}}");
}

/// Emits the utilization counter track of one host from its activity
/// timeline. Fabric time zero is the network-phase barrier, so samples are
/// shifted by `offset_seconds`.
void AppendUtilization(std::string* out, bool* first, const std::string& name,
                       uint32_t pid, const TimeSeries& series,
                       double offset_seconds) {
  const std::vector<double>& buckets = series.buckets();
  const double width = series.bucket_seconds();
  if (buckets.empty() || width <= 0) return;
  for (size_t b = 0; b < buckets.size(); ++b) {
    const double rate_mb = buckets[b] / width / 1e6;
    AppendCounter(out, first, name, pid,
                  offset_seconds + static_cast<double>(b) * width, rate_mb);
  }
  // Close the track so the last bucket does not extend forever.
  AppendCounter(out, first, name, pid,
                offset_seconds + static_cast<double>(buckets.size()) * width,
                0.0);
}

/// Per-host binding-constraint counter tracks: one stacked "C" row per host
/// whose series are the average number of flows bound by each constraint the
/// host owns (its saturated egress port, its saturated ingress port, or its
/// message-rate ceiling) over the congestion-report buckets. Perfetto colors
/// the series distinctly, so ingress pile-ups (incast) read as a solid band
/// on the victim host's row.
void AppendConstraintTracks(std::string* out, bool* first,
                            const SpanDataset& data, double offset_seconds) {
  const CongestionReport rep = ComputeCongestion(data, CongestionOptions());
  if (rep.totals.labeled_total() <= 0 || rep.bucket_seconds <= 0) return;
  for (const HostCongestionTimeline& h : rep.hosts) {
    double any = 0;
    for (size_t b = 0; b < h.egress_bound.size(); ++b) {
      any += h.egress_bound[b] + h.ingress_bound[b] + h.msg_rate_bound[b];
    }
    if (any <= 0) continue;
    const size_t buckets = h.egress_bound.size();
    for (size_t b = 0; b <= buckets; ++b) {
      // One trailing all-zero sample closes the track.
      const double e = b < buckets ? h.egress_bound[b] / rep.bucket_seconds : 0;
      const double in =
          b < buckets ? h.ingress_bound[b] / rep.bucket_seconds : 0;
      const double mr =
          b < buckets ? h.msg_rate_bound[b] / rep.bucket_seconds : 0;
      if (!*first) out->append(",");
      *first = false;
      out->append("{\"name\":");
      AppendString(out, "bound flows");
      out->append(",\"ph\":\"C\",\"pid\":");
      out->append(std::to_string(h.host));
      out->append(",\"ts\":");
      AppendDouble(out, Micros(offset_seconds + rep.t_begin +
                               static_cast<double>(b) * rep.bucket_seconds));
      out->append(",\"args\":{\"egress\":");
      AppendDouble(out, e);
      out->append(",\"ingress\":");
      AppendDouble(out, in);
      out->append(",\"msg_rate\":");
      AppendDouble(out, mr);
      out->append("}}");
    }
  }
}

/// Receiver rows get a tid far above any partitioning thread's 1+thread.
constexpr uint32_t kReceiverTid = 1000;
/// Fault-window rows sit below the receiver row.
constexpr uint32_t kFaultTid = 1001;

/// Renders every windowed fault of `schedule` as a slice on the affected
/// machine's fault row. Windows are on the network-pass clock, so they are
/// shifted to the barrier like the fabric counters. Ordinal-keyed QP faults
/// have no window and are visible through span retry args instead.
void AppendFaultWindows(std::string* out, bool* first,
                        const FaultSchedule& schedule, uint32_t nm,
                        double offset_seconds) {
  std::set<uint32_t> rows;
  for (const FaultEvent& e : schedule.events) {
    if (e.kind == FaultKind::kQpError) continue;
    const uint32_t lo = e.machine == FaultEvent::kAllMachines ? 0 : e.machine;
    const uint32_t hi =
        e.machine == FaultEvent::kAllMachines ? nm : e.machine + 1;
    for (uint32_t m = lo; m < hi && m < nm; ++m) {
      rows.insert(m);
      const double factor = e.kind == FaultKind::kLinkFlap ? 0.0 : e.factor;
      AppendSlice(out, first, "fault: " + FaultKindName(e.kind), m, kFaultTid,
                  offset_seconds + e.start_seconds, e.duration_seconds,
                  "\"factor\":" + JsonNumber(factor));
    }
  }
  for (uint32_t m : rows) {
    AppendNameMeta(out, first, "thread_name", m, static_cast<int>(kFaultTid),
                   "fault windows");
  }
}

/// Renders the top spans of the report's recorder as sender/receiver slices
/// joined by flow arrows. Span timestamps are fabric-relative, so they are
/// shifted to the network-phase barrier like the utilization counters.
void AppendSpanEvents(std::string* out, bool* first, const SpanDataset& data,
                      size_t max_spans, double offset_seconds) {
  std::vector<WrSpan> spans = TopSpansByDuration(data, max_spans);
  std::sort(spans.begin(), spans.end(),
            [](const WrSpan& a, const WrSpan& b) { return a.id < b.id; });

  std::set<std::pair<uint32_t, uint32_t>> sender_rows;
  std::set<uint32_t> receiver_rows;
  for (const WrSpan& s : spans) {
    if (!s.complete()) continue;
    const double posted = s.stage[static_cast<int>(SpanStage::kPosted)];
    const double admitted =
        s.stage[static_cast<int>(SpanStage::kFabricAdmitted)];
    const double delivered = s.stage[static_cast<int>(SpanStage::kDelivered)];
    const double completed = s.stage[static_cast<int>(SpanStage::kCompleted)];
    const uint32_t sender_tid = 1 + s.thread;
    sender_rows.insert({s.machine, sender_tid});
    receiver_rows.insert(s.dst);

    std::string args = "\"slot\":" + std::to_string(s.slot) +
                       ",\"src\":" + std::to_string(s.src) +
                       ",\"dst\":" + std::to_string(s.dst) +
                       ",\"wire_bytes\":" + JsonNumber(s.wire_bytes) +
                       ",\"pull\":" + (s.pull ? "true" : "false") +
                       ",\"credit_wait_s\":" +
                       JsonNumber(s.StageSeconds(SpanStage::kCreditAcquired)) +
                       ",\"fabric_s\":" +
                       JsonNumber(s.StageSeconds(SpanStage::kDelivered));
    if (s.retries > 0 || s.retry_delay_seconds > 0) {
      args += ",\"retries\":" + std::to_string(s.retries) +
              ",\"retry_delay_s\":" + JsonNumber(s.retry_delay_seconds);
    }
    const std::string name = "wr " + std::to_string(s.id) + " -> m" +
                             std::to_string(s.dst) +
                             (s.pull ? " (pull)" : "");
    AppendSlice(out, first, name, s.machine, sender_tid,
                offset_seconds + posted, admitted - posted, args);
    AppendFlow(out, first, /*start=*/true, s.id, s.machine, sender_tid,
               offset_seconds + posted);

    const double recv_end =
        s.recv_end != kSpanUnset ? std::max(completed, s.recv_end) : completed;
    AppendSlice(out, first, "wr " + std::to_string(s.id) + " recv", s.dst,
                kReceiverTid, offset_seconds + delivered,
                recv_end - delivered);
    AppendFlow(out, first, /*start=*/false, s.id, s.dst, kReceiverTid,
               offset_seconds + delivered);
  }

  for (const auto& row : sender_rows) {
    AppendNameMeta(out, first, "thread_name", row.first,
                   static_cast<int>(row.second),
                   "part thread " + std::to_string(row.second - 1));
  }
  for (uint32_t m : receiver_rows) {
    AppendNameMeta(out, first, "thread_name", m,
                   static_cast<int>(kReceiverTid), "receiver core");
  }

  // Constraint-change instants: one "i" marker on the sender's thread row
  // every time a rendered span's flow switches binding constraint mid-life
  // (the moment another flow's arrival or drain moved the bottleneck).
  std::map<uint64_t, std::pair<uint32_t, uint32_t>> flow_rows;
  for (const WrSpan& s : spans) {
    if (s.complete() && s.flow != 0) {
      flow_rows[s.flow] = {s.machine, 1 + s.thread};
    }
  }
  std::map<uint64_t, const FlowSegment*> prev_seg;
  for (const FlowSegment& g : data.segments) {
    if (g.bound == RateConstraint::kNone) continue;
    auto row = flow_rows.find(g.flow);
    if (row == flow_rows.end()) continue;
    const FlowSegment*& prev = prev_seg[g.flow];
    if (prev != nullptr &&
        (prev->bound != g.bound || prev->bound_host != g.bound_host)) {
      const std::string name =
          "wr flow " + std::to_string(g.flow) + " bound: " +
          RateConstraintName(prev->bound) + "@" +
          std::to_string(prev->bound_host) + " -> " +
          RateConstraintName(g.bound) + "@" + std::to_string(g.bound_host);
      AppendInstant(out, first, name, row->second.first, row->second.second,
                    offset_seconds + g.t0);
    }
    prev = &g;
  }
}

}  // namespace

std::string ChromeTraceJson(const ReplayReport& report,
                            const MetricsRegistry* metrics,
                            const ChromeTraceOptions& options) {
  std::string out = "{\"displayTimeUnit\":\"ms\"";
  if (!options.label.empty()) {
    out.append(",\"otherData\":{\"label\":");
    AppendString(&out, options.label);
    out.append("}");
  }
  out.append(",\"traceEvents\":[");
  bool first = true;
  const uint32_t nm = static_cast<uint32_t>(report.machine_phases.size());

  // Barrier starts: each phase begins globally when the slowest machine has
  // finished the previous one.
  const double hist_start = 0.0;
  const double net_start = report.phases.histogram_seconds;
  const double local_start = net_start + report.phases.network_partition_seconds;
  const double bp_start = local_start + report.phases.local_partition_seconds;

  for (uint32_t m = 0; m < nm; ++m) {
    AppendNameMeta(&out, &first, "process_name", m, -1,
                   "machine" + std::to_string(m));
    const PhaseTimes& p = report.machine_phases[m];
    AppendSlice(&out, &first, "histogram", m, 0, hist_start,
                p.histogram_seconds);
    AppendSlice(&out, &first, "network_partition", m, 0, net_start,
                p.network_partition_seconds);
    AppendSlice(&out, &first, "local_partition", m, 0, local_start,
                p.local_partition_seconds);
    AppendSlice(&out, &first, "build_probe", m, 0, bp_start,
                p.build_probe_seconds);
  }

  if (metrics != nullptr) {
    for (uint32_t h = 0; h < nm; ++h) {
      const std::string host = "fabric.host" + std::to_string(h);
      const TimeSeries* egress =
          metrics->FindTimeSeries(host + ".egress_active_bytes");
      const TimeSeries* ingress =
          metrics->FindTimeSeries(host + ".ingress_active_bytes");
      if (egress != nullptr) {
        AppendUtilization(&out, &first, "egress MB/s", h, *egress, net_start);
      }
      if (ingress != nullptr) {
        AppendUtilization(&out, &first, "ingress MB/s", h, *ingress, net_start);
      }
    }
  }

  if (options.fault_schedule != nullptr && !options.fault_schedule->empty()) {
    AppendFaultWindows(&out, &first, *options.fault_schedule, nm, net_start);
  }

  if (report.spans != nullptr && options.max_spans > 0) {
    const SpanDataset data = report.spans->Snapshot();
    AppendSpanEvents(&out, &first, data, options.max_spans, net_start);
    AppendConstraintTracks(&out, &first, data, net_start);
  }

  out.append("]}");
  return out;
}

std::string ChromeTraceJson(const ReplayReport& report,
                            const MetricsRegistry* metrics) {
  return ChromeTraceJson(report, metrics, ChromeTraceOptions());
}

Status WriteChromeTraceFile(const std::string& path, const ReplayReport& report,
                            const MetricsRegistry* metrics,
                            const ChromeTraceOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  const std::string json = ChromeTraceJson(report, metrics, options);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

Status WriteChromeTraceFile(const std::string& path, const ReplayReport& report,
                            const MetricsRegistry* metrics) {
  return WriteChromeTraceFile(path, report, metrics, ChromeTraceOptions());
}

}  // namespace rdmajoin
