#ifndef RDMAJOIN_TIMING_TRACE_IO_H_
#define RDMAJOIN_TIMING_TRACE_IO_H_

#include <string>

#include "timing/trace.h"
#include "util/statusor.h"

namespace rdmajoin {

/// Serializes an execution trace to a JSON document. Traces are
/// hardware-independent (they record what the algorithm did, not how long it
/// took), so a saved trace can be replayed against any cluster
/// configuration -- the basis of the what-if tool (tools/rdmajoin_whatif).
std::string TraceToJson(const RunTrace& trace);

/// Parses a trace previously produced by TraceToJson. The parser accepts
/// exactly that dialect (object/array/number/string, no escapes needed by
/// the schema) and rejects structural errors with InvalidArgument.
StatusOr<RunTrace> TraceFromJson(const std::string& json);

/// Convenience: write/read a trace file.
Status WriteTraceFile(const RunTrace& trace, const std::string& path);
StatusOr<RunTrace> ReadTraceFile(const std::string& path);

}  // namespace rdmajoin

#endif  // RDMAJOIN_TIMING_TRACE_IO_H_
