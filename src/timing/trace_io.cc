#include "timing/trace_io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace rdmajoin {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(std::to_string(v));
}

/// Minimal recursive-descent parser for the JSON subset TraceToJson emits.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::InvalidArgument("expected '" + std::string(1, c) +
                                     "' at offset " + std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<std::string> ParseKey() {
    RDMAJOIN_RETURN_IF_ERROR(Expect('"'));
    std::string key;
    while (pos_ < text_.size() && text_[pos_] != '"') key.push_back(text_[pos_++]);
    RDMAJOIN_RETURN_IF_ERROR(Expect('"'));
    RDMAJOIN_RETURN_IF_ERROR(Expect(':'));
    return key;
  }

  StatusOr<double> ParseNumber() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected number at offset " +
                                     std::to_string(start));
    }
    return std::stod(text_.substr(start, pos_ - start));
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Status ParseSend(JsonParser* p, SendRecord* send) {
  RDMAJOIN_RETURN_IF_ERROR(p->Expect('['));
  RDMAJOIN_ASSIGN_OR_RETURN(double dst, p->ParseNumber());
  RDMAJOIN_RETURN_IF_ERROR(p->Expect(','));
  RDMAJOIN_ASSIGN_OR_RETURN(double slot, p->ParseNumber());
  RDMAJOIN_RETURN_IF_ERROR(p->Expect(','));
  RDMAJOIN_ASSIGN_OR_RETURN(double wire, p->ParseNumber());
  RDMAJOIN_RETURN_IF_ERROR(p->Expect(','));
  RDMAJOIN_ASSIGN_OR_RETURN(double before, p->ParseNumber());
  // Optional trailing elements, present only for sends the transport layer
  // retried: [.., retries, retry_delay_seconds].
  double retries = 0;
  double retry_delay = 0;
  if (p->Consume(',')) {
    RDMAJOIN_ASSIGN_OR_RETURN(retries, p->ParseNumber());
    RDMAJOIN_RETURN_IF_ERROR(p->Expect(','));
    RDMAJOIN_ASSIGN_OR_RETURN(retry_delay, p->ParseNumber());
  }
  RDMAJOIN_RETURN_IF_ERROR(p->Expect(']'));
  send->dst_machine = static_cast<uint32_t>(dst);
  send->slot = static_cast<uint32_t>(slot);
  send->wire_bytes = static_cast<uint64_t>(wire);
  send->compute_bytes_before = static_cast<uint64_t>(before);
  send->retries = static_cast<uint32_t>(retries);
  send->retry_delay_seconds = retry_delay;
  return Status::OK();
}

Status ParseThread(JsonParser* p, ThreadNetTrace* thread) {
  RDMAJOIN_RETURN_IF_ERROR(p->Expect('{'));
  while (!p->Peek('}')) {
    RDMAJOIN_ASSIGN_OR_RETURN(std::string key, p->ParseKey());
    if (key == "compute_bytes") {
      RDMAJOIN_ASSIGN_OR_RETURN(double v, p->ParseNumber());
      thread->compute_bytes = static_cast<uint64_t>(v);
    } else if (key == "sends") {
      RDMAJOIN_RETURN_IF_ERROR(p->Expect('['));
      while (!p->Peek(']')) {
        SendRecord send;
        RDMAJOIN_RETURN_IF_ERROR(ParseSend(p, &send));
        thread->sends.push_back(send);
        if (!p->Consume(',')) break;
      }
      RDMAJOIN_RETURN_IF_ERROR(p->Expect(']'));
    } else {
      return Status::InvalidArgument("unknown thread key: " + key);
    }
    if (!p->Consume(',')) break;
  }
  return p->Expect('}');
}

Status ParseTask(JsonParser* p, BuildProbeTask* task) {
  RDMAJOIN_RETURN_IF_ERROR(p->Expect('['));
  RDMAJOIN_ASSIGN_OR_RETURN(task->build_bytes, p->ParseNumber());
  RDMAJOIN_RETURN_IF_ERROR(p->Expect(','));
  RDMAJOIN_ASSIGN_OR_RETURN(task->probe_bytes, p->ParseNumber());
  RDMAJOIN_RETURN_IF_ERROR(p->Expect(','));
  RDMAJOIN_ASSIGN_OR_RETURN(task->table_bytes, p->ParseNumber());
  return p->Expect(']');
}

Status ParseMachine(JsonParser* p, MachineTrace* machine) {
  RDMAJOIN_RETURN_IF_ERROR(p->Expect('{'));
  while (!p->Peek('}')) {
    RDMAJOIN_ASSIGN_OR_RETURN(std::string key, p->ParseKey());
    if (key == "histogram_bytes") {
      RDMAJOIN_ASSIGN_OR_RETURN(double v, p->ParseNumber());
      machine->histogram_bytes = static_cast<uint64_t>(v);
    } else if (key == "histogram_exchange_seconds") {
      RDMAJOIN_ASSIGN_OR_RETURN(machine->histogram_exchange_seconds,
                                p->ParseNumber());
    } else if (key == "recv_bytes") {
      RDMAJOIN_ASSIGN_OR_RETURN(double v, p->ParseNumber());
      machine->recv_bytes = static_cast<uint64_t>(v);
    } else if (key == "recv_messages") {
      RDMAJOIN_ASSIGN_OR_RETURN(double v, p->ParseNumber());
      machine->recv_messages = static_cast<uint64_t>(v);
    } else if (key == "local_pass_bytes") {
      RDMAJOIN_ASSIGN_OR_RETURN(double v, p->ParseNumber());
      machine->local_pass_bytes = static_cast<uint64_t>(v);
    } else if (key == "sort_bytes") {
      RDMAJOIN_ASSIGN_OR_RETURN(double v, p->ParseNumber());
      machine->sort_bytes = static_cast<uint64_t>(v);
    } else if (key == "stolen_in_bytes") {
      RDMAJOIN_ASSIGN_OR_RETURN(double v, p->ParseNumber());
      machine->stolen_in_bytes = static_cast<uint64_t>(v);
    } else if (key == "materialized_bytes") {
      RDMAJOIN_ASSIGN_OR_RETURN(double v, p->ParseNumber());
      machine->materialized_bytes = static_cast<uint64_t>(v);
    } else if (key == "setup_registration_seconds") {
      RDMAJOIN_ASSIGN_OR_RETURN(machine->setup_registration_seconds,
                                p->ParseNumber());
    } else if (key == "per_send_registration_seconds") {
      RDMAJOIN_ASSIGN_OR_RETURN(machine->per_send_registration_seconds,
                                p->ParseNumber());
    } else if (key == "net_threads") {
      RDMAJOIN_RETURN_IF_ERROR(p->Expect('['));
      while (!p->Peek(']')) {
        ThreadNetTrace thread;
        RDMAJOIN_RETURN_IF_ERROR(ParseThread(p, &thread));
        machine->net_threads.push_back(std::move(thread));
        if (!p->Consume(',')) break;
      }
      RDMAJOIN_RETURN_IF_ERROR(p->Expect(']'));
    } else if (key == "tasks") {
      RDMAJOIN_RETURN_IF_ERROR(p->Expect('['));
      while (!p->Peek(']')) {
        BuildProbeTask task;
        RDMAJOIN_RETURN_IF_ERROR(ParseTask(p, &task));
        machine->tasks.push_back(task);
        if (!p->Consume(',')) break;
      }
      RDMAJOIN_RETURN_IF_ERROR(p->Expect(']'));
    } else if (key == "merge_tasks") {
      RDMAJOIN_RETURN_IF_ERROR(p->Expect('['));
      while (!p->Peek(']')) {
        RDMAJOIN_ASSIGN_OR_RETURN(double v, p->ParseNumber());
        machine->merge_tasks.push_back(v);
        if (!p->Consume(',')) break;
      }
      RDMAJOIN_RETURN_IF_ERROR(p->Expect(']'));
    } else {
      return Status::InvalidArgument("unknown machine key: " + key);
    }
    if (!p->Consume(',')) break;
  }
  return p->Expect('}');
}

}  // namespace

std::string TraceToJson(const RunTrace& trace) {
  std::string out;
  out += "{\"scale_up\":";
  AppendDouble(&out, trace.scale_up);
  out += ",\"machines\":[";
  for (size_t m = 0; m < trace.machines.size(); ++m) {
    const MachineTrace& mt = trace.machines[m];
    if (m > 0) out += ",";
    out += "{\"histogram_bytes\":";
    AppendU64(&out, mt.histogram_bytes);
    out += ",\"histogram_exchange_seconds\":";
    AppendDouble(&out, mt.histogram_exchange_seconds);
    out += ",\"recv_bytes\":";
    AppendU64(&out, mt.recv_bytes);
    out += ",\"recv_messages\":";
    AppendU64(&out, mt.recv_messages);
    out += ",\"local_pass_bytes\":";
    AppendU64(&out, mt.local_pass_bytes);
    out += ",\"sort_bytes\":";
    AppendU64(&out, mt.sort_bytes);
    out += ",\"stolen_in_bytes\":";
    AppendU64(&out, mt.stolen_in_bytes);
    out += ",\"materialized_bytes\":";
    AppendU64(&out, mt.materialized_bytes);
    out += ",\"setup_registration_seconds\":";
    AppendDouble(&out, mt.setup_registration_seconds);
    out += ",\"per_send_registration_seconds\":";
    AppendDouble(&out, mt.per_send_registration_seconds);
    out += ",\"net_threads\":[";
    for (size_t t = 0; t < mt.net_threads.size(); ++t) {
      const ThreadNetTrace& tt = mt.net_threads[t];
      if (t > 0) out += ",";
      out += "{\"compute_bytes\":";
      AppendU64(&out, tt.compute_bytes);
      out += ",\"sends\":[";
      for (size_t s = 0; s < tt.sends.size(); ++s) {
        const SendRecord& send = tt.sends[s];
        if (s > 0) out += ",";
        out += "[";
        AppendU64(&out, send.dst_machine);
        out += ",";
        AppendU64(&out, send.slot);
        out += ",";
        AppendU64(&out, send.wire_bytes);
        out += ",";
        AppendU64(&out, send.compute_bytes_before);
        if (send.retries > 0 || send.retry_delay_seconds > 0) {
          // Optional elements: fault-free traces stay byte-identical.
          out += ",";
          AppendU64(&out, send.retries);
          out += ",";
          AppendDouble(&out, send.retry_delay_seconds);
        }
        out += "]";
      }
      out += "]}";
    }
    out += "],\"tasks\":[";
    for (size_t t = 0; t < mt.tasks.size(); ++t) {
      if (t > 0) out += ",";
      out += "[";
      AppendDouble(&out, mt.tasks[t].build_bytes);
      out += ",";
      AppendDouble(&out, mt.tasks[t].probe_bytes);
      out += ",";
      AppendDouble(&out, mt.tasks[t].table_bytes);
      out += "]";
    }
    out += "],\"merge_tasks\":[";
    for (size_t t = 0; t < mt.merge_tasks.size(); ++t) {
      if (t > 0) out += ",";
      AppendDouble(&out, mt.merge_tasks[t]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

StatusOr<RunTrace> TraceFromJson(const std::string& json) {
  JsonParser p(json);
  RunTrace trace;
  RDMAJOIN_RETURN_IF_ERROR(p.Expect('{'));
  while (!p.Peek('}')) {
    RDMAJOIN_ASSIGN_OR_RETURN(std::string key, p.ParseKey());
    if (key == "scale_up") {
      RDMAJOIN_ASSIGN_OR_RETURN(trace.scale_up, p.ParseNumber());
    } else if (key == "machines") {
      RDMAJOIN_RETURN_IF_ERROR(p.Expect('['));
      while (!p.Peek(']')) {
        MachineTrace machine;
        RDMAJOIN_RETURN_IF_ERROR(ParseMachine(&p, &machine));
        trace.machines.push_back(std::move(machine));
        if (!p.Consume(',')) break;
      }
      RDMAJOIN_RETURN_IF_ERROR(p.Expect(']'));
    } else {
      return Status::InvalidArgument("unknown trace key: " + key);
    }
    if (!p.Consume(',')) break;
  }
  RDMAJOIN_RETURN_IF_ERROR(p.Expect('}'));
  if (!p.AtEnd()) return Status::InvalidArgument("trailing data after trace");
  return trace;
}

Status WriteTraceFile(const RunTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  const std::string json = TraceToJson(trace);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

StatusOr<RunTrace> ReadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return TraceFromJson(buf.str());
}

}  // namespace rdmajoin
