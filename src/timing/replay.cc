#include "timing/replay.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <string>

#include "fault/injector.h"
#include "sim/link_fabric.h"
#include "timing/makespan.h"
#include "util/arena.h"
#include "util/flat_map.h"
#include "util/metrics.h"

namespace rdmajoin {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Simulation state of one partitioning thread during the network pass.
/// Record-keeping lives in the replay's run-scoped arena (util/arena.h): the
/// per-slot credit table and the flow table below are FlatMaps whose slot
/// arrays are bump-allocated and released wholesale when the replay returns.
struct ThreadSim {
  explicit ThreadSim(Arena* arena) : outstanding(arena, 16) {}

  uint32_t machine = 0;
  uint32_t thread = 0;
  const ThreadNetTrace* tr = nullptr;

  enum class State { kComputing, kBlockedCredit, kBlockedFlow, kDone };
  State state = State::kComputing;

  size_t next_send = 0;
  double time = 0;
  uint64_t compute_done = 0;  // actual bytes
  uint32_t blocked_slot = 0;
  uint64_t blocked_flow = 0;
  /// Span opened for the send currently being posted (survives a credit
  /// block so the span's posted/credit stages bracket the stall).
  uint64_t pending_span = 0;
  /// slot -> in-flight count, keyed slot + 1 (FlatMap reserves key 0).
  FlatMap<uint32_t, uint32_t> outstanding;
  uint32_t& OutCount(uint32_t slot) { return outstanding.GetOrInsert(slot + 1); }

  // Wall-clock attribution of this thread's timeline: every advancement of
  // `time` lands in exactly one bucket, so compute + credit_stall +
  // flow_stall + recovery always equals `time`. `recovery_seconds` holds
  // fault-induced slowdown: the straggler excess over the nominal compute
  // time plus the transport's recorded retry/timeout/backoff delays.
  double compute_seconds = 0;
  double credit_stall_seconds = 0;
  double flow_stall_seconds = 0;
  double recovery_seconds = 0;
  double stall_start = 0;
};

struct FlowInfo {
  size_t thread_index;
  uint32_t slot;
  uint32_t dst;
  double virtual_bytes;
  uint64_t span = 0;
};

/// Per-send sender-side CPU overheads (virtual seconds).
double PerSendOverhead(const ClusterConfig& cluster, const MachineTrace& mt,
                       double virtual_wire_bytes) {
  double extra = mt.per_send_registration_seconds;
  if (cluster.transport == TransportKind::kTcp) {
    // Kernel crossing plus the copy into the socket buffer.
    extra += cluster.tcp.per_message_seconds;
    extra += virtual_wire_bytes / cluster.tcp.sender_copy_bytes_per_sec;
  }
  return extra;
}

}  // namespace

ReplayReport ReplayTrace(const ClusterConfig& cluster, const JoinConfig& config,
                         const RunTrace& trace, const ReplayOptions& options) {
  ReplayReport report;
  const uint32_t nm = cluster.num_machines;
  assert(trace.machines.size() == nm);
  report.machine_phases.assign(nm, PhaseTimes{});
  report.attribution.machines.assign(nm, MachineAttribution{});
  const double scale = trace.scale_up;
  const CostModel& costs = cluster.costs;
  const uint32_t cores = cluster.cores_per_machine;

  // ---- Histogram phase: all cores scan the machine's input, then the
  // machine-level histograms are exchanged over the control plane. ----
  for (uint32_t m = 0; m < nm; ++m) {
    const double vbytes = static_cast<double>(trace.machines[m].histogram_bytes) * scale;
    const double scan =
        vbytes / (static_cast<double>(cores) * costs.histogram_bytes_per_sec);
    const double t = scan + trace.machines[m].histogram_exchange_seconds;
    report.machine_phases[m].histogram_seconds = t;
    report.phases.histogram_seconds = std::max(report.phases.histogram_seconds, t);
    PhaseAttribution& attr =
        report.attribution.machines[m].at(JoinPhase::kHistogram);
    attr.compute_seconds = scan;
    attr.network_seconds = trace.machines[m].histogram_exchange_seconds;
  }

  // ---- Network partitioning pass: discrete-event simulation. ----
  FabricConfig fc = cluster.fabric;
  fc.num_hosts = nm;
  if (cluster.transport == TransportKind::kTcp) {
    fc.egress_bytes_per_sec = cluster.tcp.bytes_per_sec;
    fc.ingress_bytes_per_sec = cluster.tcp.bytes_per_sec;
    fc.message_rate_per_host = 0.0;  // Per-message cost is paid by the CPU.
  }
  // Run-scoped arena: every WR/flow record and hash-slot array allocated
  // below lives until the replay returns, then is released in one sweep.
  // Declared before anything that borrows from it.
  Arena arena;
  LinkFabric fabric(fc);
  if (options.metrics != nullptr) {
    fabric.EnableMetrics(options.metrics, "fabric",
                         options.utilization_bucket_seconds);
  }
  // Span recorder: an external one when supplied (aliased, not owned), else
  // an internal one per SpanConfig. Published on the report either way.
  std::shared_ptr<SpanRecorder> recorder;
  if (options.span_recorder != nullptr) {
    if (options.span_recorder->enabled()) {
      recorder = std::shared_ptr<SpanRecorder>(std::shared_ptr<void>(),
                                               options.span_recorder);
    }
  } else if (options.spans.enabled) {
    recorder = std::make_shared<SpanRecorder>(options.spans);
  }
  report.spans = recorder;
  if (recorder != nullptr) fabric.EnableFlowTelemetry(recorder.get());

  std::vector<ThreadSim> threads;
  for (uint32_t m = 0; m < nm; ++m) {
    const auto& mt = trace.machines[m];
    for (uint32_t t = 0; t < mt.net_threads.size(); ++t) {
      ThreadSim ts(&arena);
      ts.machine = m;
      ts.thread = t;
      ts.tr = &mt.net_threads[t];
      ts.state = ThreadSim::State::kComputing;
      threads.push_back(std::move(ts));
    }
  }

  const uint32_t credits = cluster.interleave == InterleavePolicy::kNonInterleaved
                               ? 1
                               : config.buffers_per_partition;
  const bool has_receiver_copy = cluster.transport == TransportKind::kRdmaChannel ||
                                 cluster.transport == TransportKind::kTcp;

  // Fault injection (src/fault/): an inactive injector is dropped entirely so
  // the fault-free code paths below stay literally identical.
  const FaultInjector* inj =
      (options.injector != nullptr && options.injector->active())
          ? options.injector
          : nullptr;
  // Effective double-buffering credit supply at virtual time `t` (shrunk
  // inside credit windows, never below one credit).
  auto effective_credits = [&](uint32_t machine, double t) -> uint32_t {
    if (inj != nullptr && inj->HasCreditFaults()) {
      return inj->EffectiveCredits(machine, t, credits);
    }
    return credits;
  };
  // Apply the link-capacity scales covering t = 0 and schedule the first
  // window boundary; inside the loop the fabric is advanced to every
  // boundary so rate transitions land on the discrete-event clock.
  double next_fault = kInf;
  if (inj != nullptr) {
    if (inj->HasLinkFaults()) {
      for (uint32_t h = 0; h < nm; ++h) {
        fabric.SetHostCapacityScale(h, inj->EgressScale(h, 0.0),
                                    inj->IngressScale(h, 0.0));
      }
    }
    next_fault = inj->NextTransitionAfter(0.0);
  }

  report.receiver_busy_seconds.assign(nm, 0.0);
  report.net_thread_finish_seconds.assign(nm, 0.0);
  std::vector<double> receiver_ready(nm, 0.0);  // FIFO service completion time
  // Receiver-not-ready backpressure: a message only releases its sender-side
  // buffer credit once a receive-ring slot is free again, i.e. once the
  // receiver finished servicing the message `ring_depth` positions earlier.
  // ring_slot_free[m] holds the service-finish times of the last `ring`
  // messages of machine m (circular).
  const uint32_t ring = config.recv_buffers_per_link * (nm > 1 ? nm - 1 : 1);
  // Flat per-machine ring of service-finish times (row m at m * ring).
  double* ring_slot_free =
      arena.AllocateArray<double>(static_cast<size_t>(nm) * ring);
  std::vector<uint64_t> ring_pos(nm, 0);
  FlatMap<uint64_t, FlowInfo> flows(&arena, 1024);
  double total_virtual_wire = 0;
  std::vector<double> last_completion_to(nm, 0.0);

  const double ps_part = costs.partition_bytes_per_sec;

  // Virtual time a thread needs to reach compute position `target_bytes`.
  // On a straggler machine the nominal compute time is stretched piecewise
  // by the scheduled slowdown windows; without one the result is exactly
  // ts.time + delta (ComputeFinishTime guarantees the identity case too).
  auto compute_time_to = [&](const ThreadSim& ts, uint64_t target_bytes) {
    const double delta =
        static_cast<double>(target_bytes - ts.compute_done) * scale / ps_part;
    if (inj != nullptr && inj->HasStraggler(ts.machine)) {
      return inj->ComputeFinishTime(ts.machine, ts.time, delta);
    }
    return ts.time + delta;
  };
  // Advances `ts` to the action time `t_thread`, splitting the stretch into
  // nominal compute and straggler-induced recovery time.
  auto charge_compute = [&](ThreadSim& ts, double t_thread,
                            uint64_t target_bytes) {
    if (inj != nullptr && inj->HasStraggler(ts.machine)) {
      const double nominal =
          static_cast<double>(target_bytes - ts.compute_done) * scale / ps_part;
      ts.compute_seconds += nominal;
      ts.recovery_seconds += (t_thread - ts.time) - nominal;
    } else {
      ts.compute_seconds += t_thread - ts.time;
    }
    ts.time = t_thread;
  };

  // Time at which a thread will next act if unblocked; +inf when waiting.
  auto next_action_time = [&](const ThreadSim& ts) -> double {
    switch (ts.state) {
      case ThreadSim::State::kDone:
      case ThreadSim::State::kBlockedCredit:
      case ThreadSim::State::kBlockedFlow:
        return kInf;
      case ThreadSim::State::kComputing:
        if (ts.next_send < ts.tr->sends.size()) {
          return compute_time_to(ts, ts.tr->sends[ts.next_send].compute_bytes_before);
        }
        return compute_time_to(ts, ts.tr->compute_bytes);
    }
    return kInf;
  };

  uint64_t active = threads.size();
  double last_completion = 0;
  // Drains a batch of fabric completions: receiver service, span stages,
  // credit return and thread wake-ups. Shared by the net-completion branch
  // and the fault-boundary branch of the event loop below.
  auto process_completions = [&](const std::vector<LinkFabric::Completion>& done) {
    for (const auto& c : done) {
      last_completion = std::max(last_completion, c.time);
      const FlowInfo* it = flows.Find(c.id);
      assert(it != nullptr);
      last_completion_to[it->dst] = std::max(last_completion_to[it->dst], c.time);
      const FlowInfo fi = *it;
      flows.Erase(c.id);
      if (recorder != nullptr && fi.span != 0) {
        recorder->MarkStage(fi.span, SpanStage::kDelivered, c.time);
      }
      // Receiver-side service (two-sided copies / TCP receive path) with
      // receive-ring backpressure: if every ring buffer is still waiting
      // to be drained, the sender's acknowledgement (and thus its buffer
      // credit) is delayed until a slot frees up.
      double credit_time = c.time;
      if (has_receiver_copy) {
        double service;
        if (cluster.transport == TransportKind::kTcp) {
          service = fi.virtual_bytes / cluster.tcp.receiver_bytes_per_sec +
                    cluster.tcp.per_message_seconds;
        } else {
          service = fi.virtual_bytes / costs.memcpy_bytes_per_sec;
        }
        double* slots = ring_slot_free + static_cast<size_t>(fi.dst) * ring;
        const uint64_t pos = ring_pos[fi.dst]++ % ring;
        const double slot_free_at = slots[pos];
        const double start =
            std::max({receiver_ready[fi.dst], c.time, slot_free_at});
        receiver_ready[fi.dst] = start + service;
        slots[pos] = receiver_ready[fi.dst];
        report.receiver_busy_seconds[fi.dst] += service;
        credit_time = std::max(credit_time, slot_free_at);
        if (recorder != nullptr && fi.span != 0) {
          recorder->SetReceiverService(fi.span, start, receiver_ready[fi.dst]);
        }
      }
      if (recorder != nullptr && fi.span != 0) {
        recorder->MarkStage(fi.span, SpanStage::kCompleted, credit_time);
      }
      // Return the buffer credit and possibly wake the thread.
      ThreadSim& ts = threads[fi.thread_index];
      uint32_t* out = ts.outstanding.Find(fi.slot + 1);
      assert(out != nullptr && *out > 0);
      --*out;
      if (ts.state == ThreadSim::State::kBlockedFlow && ts.blocked_flow == c.id) {
        ts.state = ThreadSim::State::kComputing;
        ts.time = std::max(ts.time, credit_time);
        ts.flow_stall_seconds += ts.time - ts.stall_start;
      } else if (ts.state == ThreadSim::State::kBlockedCredit &&
                 ts.blocked_slot == fi.slot &&
                 *out < effective_credits(ts.machine, credit_time)) {
        ts.state = ThreadSim::State::kComputing;
        ts.time = std::max(ts.time, credit_time);
        ts.credit_stall_seconds += ts.time - ts.stall_start;
      }
    }
  };
  // Run until every thread is done AND the fabric is fully idle. The last
  // drained message's completion sits in the fabric's latency stage after
  // the queue empties, so the queued-message count alone would drop it
  // (NextCompletionTime covers both queued bytes and buffered completions).
  while (active > 0 || fabric.queued_messages() > 0 ||
         fabric.NextCompletionTime() != kInf) {
    // Earliest thread action.
    double t_thread = kInf;
    size_t who = 0;
    for (size_t i = 0; i < threads.size(); ++i) {
      const double t = next_action_time(threads[i]);
      if (t < t_thread) {
        t_thread = t;
        who = i;
      }
    }
    const double t_net = fabric.NextCompletionTime();

    // Fault-window boundary: advance the fabric to the transition (draining
    // anything that completes under the old rates first), switch the host
    // capacity scales, and wake credit-blocked threads whose supply just
    // replenished. Ties go to the boundary so events at the same instant
    // see the post-transition world.
    if (next_fault <= t_thread && next_fault <= t_net) {
      const double t_fault = next_fault;
      std::vector<LinkFabric::Completion> done;
      fabric.AdvanceTo(t_fault, &done);
      process_completions(done);
      if (inj->HasLinkFaults()) {
        for (uint32_t h = 0; h < nm; ++h) {
          fabric.SetHostCapacityScale(h, inj->EgressScale(h, t_fault),
                                      inj->IngressScale(h, t_fault));
        }
      }
      if (inj->HasCreditFaults()) {
        for (ThreadSim& ts : threads) {
          if (ts.state != ThreadSim::State::kBlockedCredit) continue;
          if (ts.OutCount(ts.blocked_slot) <
              effective_credits(ts.machine, t_fault)) {
            ts.state = ThreadSim::State::kComputing;
            ts.time = std::max(ts.time, t_fault);
            ts.credit_stall_seconds += ts.time - ts.stall_start;
          }
        }
      }
      next_fault = inj->NextTransitionAfter(t_fault);
      continue;
    }

    if (t_net <= t_thread) {
      if (t_net == kInf) break;  // Nothing left to happen.
      std::vector<LinkFabric::Completion> done;
      fabric.AdvanceTo(t_net, &done);
      process_completions(done);
      continue;
    }

    // Thread action.
    ThreadSim& ts = threads[who];
    assert(ts.state == ThreadSim::State::kComputing);
    if (ts.next_send >= ts.tr->sends.size()) {
      // Final compute stretch: the thread is finished.
      charge_compute(ts, t_thread, ts.tr->compute_bytes);
      ts.compute_done = ts.tr->compute_bytes;
      ts.state = ThreadSim::State::kDone;
      --active;
      report.net_thread_finish_seconds[ts.machine] =
          std::max(report.net_thread_finish_seconds[ts.machine], ts.time);
      continue;
    }
    const SendRecord& send = ts.tr->sends[ts.next_send];
    charge_compute(ts, t_thread, send.compute_bytes_before);
    ts.compute_done = send.compute_bytes_before;
    const double vbytes = static_cast<double>(send.wire_bytes) * scale;
    const uint32_t flow_src = send.src_machine == SendRecord::kIssuerIsSource
                                  ? ts.machine
                                  : send.src_machine;
    // Open the span at the send's first arrival (the compute anchor); a
    // credit-blocked retry re-enters here with the span already open, so
    // posted -> credit-acquired brackets the stall exactly.
    if (recorder != nullptr && ts.pending_span == 0) {
      ts.pending_span = recorder->BeginSpan(
          ts.machine, ts.thread, send.slot, flow_src, send.dst_machine, vbytes,
          /*pull=*/send.src_machine != SendRecord::kIssuerIsSource, ts.time);
    }
    const uint32_t out = ts.OutCount(send.slot);
    if (out >= effective_credits(ts.machine, ts.time)) {
      ts.state = ThreadSim::State::kBlockedCredit;
      ts.blocked_slot = send.slot;
      ts.stall_start = ts.time;
      continue;  // Will retry the same send once a credit returns.
    }
    if (recorder != nullptr && ts.pending_span != 0) {
      recorder->MarkStage(ts.pending_span, SpanStage::kCreditAcquired, ts.time);
    }
    // Post the send: charge sender-side per-message overheads, then inject.
    const double overhead = PerSendOverhead(cluster, trace.machines[ts.machine], vbytes);
    ts.time += overhead;
    ts.compute_seconds += overhead;
    // Execution-layer recovery (transport retries, timeouts, backoff) delays
    // this send's admission; the delay is the fault_recovery bucket's share
    // of the thread timeline. Zero (and skipped) on fault-free traces.
    if (send.retries > 0 || send.retry_delay_seconds > 0) {
      ts.time += send.retry_delay_seconds;
      ts.recovery_seconds += send.retry_delay_seconds;
      if (recorder != nullptr && ts.pending_span != 0) {
        recorder->SetFaultInfo(ts.pending_span, send.retries,
                               send.retry_delay_seconds);
      }
    }
    const LinkFabric::MessageId id = fabric.Enqueue(
        flow_src, send.dst_machine, vbytes, ts.time, /*cookie=*/0, ts.tr->query);
    flows.Put(id, FlowInfo{who, send.slot, send.dst_machine, vbytes, ts.pending_span});
    if (recorder != nullptr && ts.pending_span != 0) {
      recorder->MarkStage(ts.pending_span, SpanStage::kFabricAdmitted, ts.time);
      recorder->SetFlow(ts.pending_span, id);
    }
    ts.pending_span = 0;
    ++ts.OutCount(send.slot);
    total_virtual_wire += vbytes;
    ++ts.next_send;
    if (cluster.interleave == InterleavePolicy::kNonInterleaved) {
      ts.state = ThreadSim::State::kBlockedFlow;
      ts.blocked_flow = id;
      ts.stall_start = ts.time;
    }
  }

  if (recorder != nullptr) {
    // Threads are in (machine, thread) order -- the order the attribution's
    // lead-thread tie-break assumes.
    for (const ThreadSim& ts : threads) {
      recorder->AddThreadMark(ThreadMark{ts.machine, ts.thread, ts.time,
                                         ts.compute_seconds,
                                         ts.credit_stall_seconds,
                                         ts.flow_stall_seconds,
                                         ts.recovery_seconds});
    }
  }

  double net_end = last_completion;
  for (const ThreadSim& ts : threads) net_end = std::max(net_end, ts.time);
  for (uint32_t m = 0; m < nm; ++m) net_end = std::max(net_end, receiver_ready[m]);
  double setup = 0;
  for (uint32_t m = 0; m < nm; ++m) {
    setup = std::max(setup, trace.machines[m].setup_registration_seconds);
  }
  report.phases.network_partition_seconds = net_end + setup;
  // Per-machine view: a machine's network phase ends when its own senders,
  // its receiver core and its last inbound message are all done.
  std::vector<double> machine_net_end(nm, 0.0);
  std::vector<const ThreadSim*> lead_thread(nm, nullptr);
  for (const ThreadSim& ts : threads) {
    if (ts.time > machine_net_end[ts.machine]) {
      machine_net_end[ts.machine] = ts.time;
      lead_thread[ts.machine] = &ts;
    }
  }
  for (uint32_t m = 0; m < nm; ++m) {
    const double lead_finish = machine_net_end[m];
    machine_net_end[m] = std::max(
        {machine_net_end[m], receiver_ready[m], last_completion_to[m]});
    report.machine_phases[m].network_partition_seconds =
        machine_net_end[m] + trace.machines[m].setup_registration_seconds;
    // Decompose along the machine's critical chain: its last-finishing
    // partitioning thread, then the tail until the machine's receiver core
    // and last inbound transfer are done (pure network wait -- the CPU has
    // nothing left to do). Registration setup is CPU work.
    PhaseAttribution& attr =
        report.attribution.machines[m].at(JoinPhase::kNetworkPartition);
    attr.compute_seconds = trace.machines[m].setup_registration_seconds;
    if (lead_thread[m] != nullptr) {
      attr.compute_seconds += lead_thread[m]->compute_seconds;
      attr.buffer_stall_seconds = lead_thread[m]->credit_stall_seconds;
      attr.network_seconds = lead_thread[m]->flow_stall_seconds;
      attr.fault_recovery_seconds = lead_thread[m]->recovery_seconds;
    }
    attr.network_seconds += machine_net_end[m] - lead_finish;
  }
  report.last_completion_seconds = last_completion;
  if (net_end > 0) {
    report.avg_network_rate_bytes_per_sec = total_virtual_wire / net_end;
  }

  // ---- Local phase: partitioning passes at full partitioning speed plus
  // any local sorting (sort-merge operator), all cores. ----
  for (uint32_t m = 0; m < nm; ++m) {
    const double vbytes =
        static_cast<double>(trace.machines[m].local_pass_bytes) * scale;
    double t = vbytes / (static_cast<double>(cores) * ps_part);
    t += static_cast<double>(trace.machines[m].sort_bytes) * scale /
         (static_cast<double>(cores) * costs.sort_bytes_per_sec);
    report.machine_phases[m].local_partition_seconds = t;
    report.phases.local_partition_seconds =
        std::max(report.phases.local_partition_seconds, t);
    report.attribution.machines[m]
        .at(JoinPhase::kLocalPartition)
        .compute_seconds = t;
  }

  // ---- Build/probe: LPT scheduling of the recorded tasks per machine.
  // Stolen partition data must first arrive over the network (serialized at
  // the effective port bandwidth); materialized output is written at memcpy
  // speed by the probing threads. ----
  const double port_bandwidth = cluster.transport == TransportKind::kTcp
                                    ? cluster.tcp.bytes_per_sec
                                    : cluster.fabric.EffectiveEgress();
  for (uint32_t m = 0; m < nm; ++m) {
    const MachineTrace& mt = trace.machines[m];
    std::vector<double> task_seconds;
    task_seconds.reserve(mt.tasks.size());
    for (const BuildProbeTask& task : mt.tasks) {
      task_seconds.push_back(task.build_bytes * scale / costs.build_bytes_per_sec +
                             task.probe_bytes * scale / costs.probe_bytes_per_sec);
    }
    for (double bytes : mt.merge_tasks) {
      task_seconds.push_back(bytes * scale / costs.merge_bytes_per_sec);
    }
    const double lpt = LptMakespan(task_seconds, cores);
    const double stolen_transfer =
        static_cast<double>(mt.stolen_in_bytes) * scale / port_bandwidth;
    const double materialize =
        static_cast<double>(mt.materialized_bytes) * scale /
        (static_cast<double>(cores) * costs.memcpy_bytes_per_sec);
    const double t = lpt + stolen_transfer + materialize;
    report.machine_phases[m].build_probe_seconds = t;
    report.phases.build_probe_seconds =
        std::max(report.phases.build_probe_seconds, t);
    PhaseAttribution& attr =
        report.attribution.machines[m].at(JoinPhase::kBuildProbe);
    attr.compute_seconds = lpt + materialize;
    attr.network_seconds = stolen_transfer;
  }

  FinalizeAttribution(report.machine_phases, report.phases, &report.attribution);

  if (options.metrics != nullptr) {
    for (uint32_t m = 0; m < nm; ++m) {
      const std::string name = "join.machine" + std::to_string(m);
      const PhaseTimes& p = report.machine_phases[m];
      options.metrics->GetGauge(name + ".histogram_seconds")
          ->Set(p.histogram_seconds);
      options.metrics->GetGauge(name + ".network_partition_seconds")
          ->Set(p.network_partition_seconds);
      options.metrics->GetGauge(name + ".local_partition_seconds")
          ->Set(p.local_partition_seconds);
      options.metrics->GetGauge(name + ".build_probe_seconds")
          ->Set(p.build_probe_seconds);
    }
  }

  return report;
}


StatusOr<ReplayReport> ReplayConcurrent(const ClusterConfig& cluster,
                                        const JoinConfig& config,
                                        const std::vector<RunTrace>& traces,
                                        const ReplayOptions& options) {
  if (traces.empty()) return Status::InvalidArgument("no traces to replay");
  const uint32_t nm = cluster.num_machines;
  const double scale = traces[0].scale_up;
  for (const RunTrace& t : traces) {
    if (t.machines.size() != nm) {
      return Status::InvalidArgument("trace machine count does not match cluster");
    }
    if (t.scale_up != scale) {
      return Status::InvalidArgument("traces must share one scale factor");
    }
  }
  // Merge: per machine, concatenate the queries' thread traces and work
  // lists. One receiver core then services the combined message stream and
  // the fabric carries the combined traffic.
  RunTrace merged;
  merged.scale_up = scale;
  merged.machines.resize(nm);
  for (size_t qi = 0; qi < traces.size(); ++qi) {
    const RunTrace& t = traces[qi];
    for (uint32_t m = 0; m < nm; ++m) {
      MachineTrace& dst = merged.machines[m];
      const MachineTrace& src = t.machines[m];
      dst.histogram_bytes += src.histogram_bytes;
      dst.histogram_exchange_seconds =
          std::max(dst.histogram_exchange_seconds, src.histogram_exchange_seconds);
      // Tag each query's threads so the fabric carries per-query tenant ids
      // (per-query bandwidth shares are readable via LinkFabric::TenantRate).
      const size_t first_new = dst.net_threads.size();
      dst.net_threads.insert(dst.net_threads.end(), src.net_threads.begin(),
                             src.net_threads.end());
      for (size_t i = first_new; i < dst.net_threads.size(); ++i) {
        dst.net_threads[i].query = static_cast<uint32_t>(qi);
      }
      dst.recv_bytes += src.recv_bytes;
      dst.recv_messages += src.recv_messages;
      dst.local_pass_bytes += src.local_pass_bytes;
      dst.sort_bytes += src.sort_bytes;
      dst.merge_tasks.insert(dst.merge_tasks.end(), src.merge_tasks.begin(),
                             src.merge_tasks.end());
      dst.tasks.insert(dst.tasks.end(), src.tasks.begin(), src.tasks.end());
      dst.stolen_in_bytes += src.stolen_in_bytes;
      dst.materialized_bytes += src.materialized_bytes;
      dst.setup_registration_seconds =
          std::max(dst.setup_registration_seconds, src.setup_registration_seconds);
      dst.per_send_registration_seconds = std::max(
          dst.per_send_registration_seconds, src.per_send_registration_seconds);
    }
  }
  // Fair time-sharing: with Q queries each thread effectively runs at 1/Q of
  // its core (the merged trace has Q threads per core).
  const double q = static_cast<double>(traces.size());
  ClusterConfig shared = cluster;
  shared.costs.partition_bytes_per_sec /= q;
  shared.costs.histogram_bytes_per_sec /= q;
  shared.costs.build_bytes_per_sec /= q;
  shared.costs.probe_bytes_per_sec /= q;
  shared.costs.sort_bytes_per_sec /= q;
  shared.costs.merge_bytes_per_sec /= q;
  // The receiver core is one physical core servicing all queries: its copy
  // rate is NOT divided (the merged stream is serviced sequentially).
  // Build/probe and local phases are summed workloads on shared cores: the
  // merged task lists under the scaled rates already model that. But the
  // histogram and local phases would double-charge (bytes summed AND rate
  // divided); undo one of the two by restoring the rates for barrier phases.
  shared.costs.histogram_bytes_per_sec = cluster.costs.histogram_bytes_per_sec;
  shared.costs.partition_bytes_per_sec = cluster.costs.partition_bytes_per_sec;
  shared.costs.sort_bytes_per_sec = cluster.costs.sort_bytes_per_sec;
  shared.costs.build_bytes_per_sec = cluster.costs.build_bytes_per_sec;
  shared.costs.probe_bytes_per_sec = cluster.costs.probe_bytes_per_sec;
  shared.costs.merge_bytes_per_sec = cluster.costs.merge_bytes_per_sec;
  // What remains scaled: the per-thread partitioning rate inside the network
  // pass, where each query's threads genuinely timeshare the cores.
  ClusterConfig net_shared = shared;
  net_shared.costs.partition_bytes_per_sec =
      cluster.costs.partition_bytes_per_sec / q;
  // Barrier phases with summed bytes at full rates (cores process the
  // queries' combined volume either way). Spans are recorded only by the
  // contended network replay below -- that is the network pass the combined
  // report describes.
  ReplayOptions barrier_options;
  barrier_options.spans.enabled = false;
  ReplayReport barrier_report = ReplayTrace(shared, config, merged, barrier_options);
  // Network pass with contention + timesharing. This call carries the
  // metrics so fabric utilization and the phase gauges reflect the contended
  // network (the barrier phases were just overwritten below anyway).
  ReplayReport net_report = ReplayTrace(net_shared, config, merged, options);
  ReplayReport report = barrier_report;
  report.phases.network_partition_seconds =
      net_report.phases.network_partition_seconds;
  for (uint32_t m = 0; m < nm; ++m) {
    report.machine_phases[m].network_partition_seconds =
        net_report.machine_phases[m].network_partition_seconds;
  }
  report.receiver_busy_seconds = net_report.receiver_busy_seconds;
  report.net_thread_finish_seconds = net_report.net_thread_finish_seconds;
  report.last_completion_seconds = net_report.last_completion_seconds;
  report.avg_network_rate_bytes_per_sec = net_report.avg_network_rate_bytes_per_sec;
  report.spans = net_report.spans;
  // Attribution: barrier phases from the full-rate replay, the network pass
  // from the contended replay, then re-derive barrier waits and the critical
  // chain against the combined phase times.
  constexpr size_t kNetPhase = static_cast<size_t>(JoinPhase::kNetworkPartition);
  for (uint32_t m = 0; m < nm; ++m) {
    report.attribution.machines[m].phases[kNetPhase] =
        net_report.attribution.machines[m].phases[kNetPhase];
  }
  FinalizeAttribution(report.machine_phases, report.phases, &report.attribution);
  if (options.metrics != nullptr) {
    // Re-emit the gauges from the merged view (histogram/local/build-probe
    // at full rates, network from the contended pass).
    for (uint32_t m = 0; m < nm; ++m) {
      const std::string name = "join.machine" + std::to_string(m);
      const PhaseTimes& p = report.machine_phases[m];
      options.metrics->GetGauge(name + ".histogram_seconds")
          ->Set(p.histogram_seconds);
      options.metrics->GetGauge(name + ".network_partition_seconds")
          ->Set(p.network_partition_seconds);
      options.metrics->GetGauge(name + ".local_partition_seconds")
          ->Set(p.local_partition_seconds);
      options.metrics->GetGauge(name + ".build_probe_seconds")
          ->Set(p.build_probe_seconds);
    }
  }
  return report;
}

}  // namespace rdmajoin
