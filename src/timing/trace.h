#ifndef RDMAJOIN_TIMING_TRACE_H_
#define RDMAJOIN_TIMING_TRACE_H_

#include <cstdint>
#include <vector>

namespace rdmajoin {

/// One buffer transmission posted by a partitioning thread during the
/// network partitioning pass. `compute_bytes_before` anchors the send on the
/// thread's compute timeline: it is the number of input bytes the thread had
/// partitioned when the buffer filled up.
struct SendRecord {
  uint32_t dst_machine = 0;
  /// Credit slot for double buffering: the first-pass partition id. Each
  /// (thread, slot) owns `buffers_per_partition` buffers used in turn
  /// (Section 4.2.1).
  uint32_t slot = 0;
  /// Actual bytes on the wire (payload plus any header).
  uint64_t wire_bytes = 0;
  uint64_t compute_bytes_before = 0;
  /// Machine whose port the bytes leave from. kIssuerIsSource (the default)
  /// means the issuing thread's machine (push transports); RDMA READ pulls
  /// record the remote staging machine here.
  static constexpr uint32_t kIssuerIsSource = UINT32_MAX;
  uint32_t src_machine = kIssuerIsSource;
  /// Execution-layer recovery cost attached by the transport's retry path
  /// (src/fault/): completed attempts beyond the first, and the virtual
  /// seconds of timeout + backoff spent before the successful attempt. The
  /// replay charges the delay to the fault_recovery attribution bucket.
  uint32_t retries = 0;
  double retry_delay_seconds = 0;
};

/// The network-pass activity of one partitioning thread.
struct ThreadNetTrace {
  /// Total actual input bytes the thread partitioned in the network pass.
  uint64_t compute_bytes = 0;
  /// Originating query in a merged multi-query trace (ReplayConcurrent,
  /// src/sched/). Passed to the fabric as the tenant tag so per-query
  /// bandwidth shares can be read back out; 0 for single-query traces.
  uint32_t query = 0;
  /// Sends in posting order; compute_bytes_before is non-decreasing.
  std::vector<SendRecord> sends;
};

/// One build/probe work unit: a cache-sized partition (or, after skew
/// splitting, a probe range of one).
struct BuildProbeTask {
  double build_bytes = 0;  // Inner-relation bytes hashed (0 for probe splits).
  double probe_bytes = 0;  // Outer-relation bytes probed.
  /// Bytes of the hash table's inner partition. Probe-split chunks share
  /// their parent's table (build_bytes = 0); if such a task migrates to
  /// another machine, the table data ships with it and is rebuilt there.
  double table_bytes = 0;
};

/// Everything the timing replay needs to know about one machine's execution.
/// All byte quantities are actual (scaled); the replay converts to virtual
/// full-scale bytes via RunTrace::scale_up.
struct MachineTrace {
  /// Input bytes scanned during the histogram phase.
  uint64_t histogram_bytes = 0;
  /// Virtual seconds spent exchanging machine-level histograms over the
  /// control plane (Section 4.1); charged to the histogram phase.
  double histogram_exchange_seconds = 0;
  /// One entry per partitioning thread.
  std::vector<ThreadNetTrace> net_threads;
  /// Bytes arriving via two-sided messages, copied by the receiver core.
  uint64_t recv_bytes = 0;
  uint64_t recv_messages = 0;
  /// Total bytes this machine moves across all local partitioning passes
  /// (its assigned share of R + S, once per charged pass).
  uint64_t local_pass_bytes = 0;
  /// Bytes this machine sorts locally (sort-merge operator); charged at the
  /// cost model's sort rate into the local phase.
  uint64_t sort_bytes = 0;
  /// Merge-join work units (bytes of the two sorted runs per range); charged
  /// at the merge rate into the build/probe phase via LPT scheduling.
  std::vector<double> merge_tasks;
  /// Build/probe work units after skew splitting (and, if enabled, after
  /// inter-machine work stealing rebalanced them).
  std::vector<BuildProbeTask> tasks;
  /// Actual bytes of partition data shipped to this machine by work
  /// stealing; the transfer delays the start of its stolen tasks.
  uint64_t stolen_in_bytes = 0;
  /// Output tuples materialized on this machine (actual bytes); written to
  /// result buffers at memcpy speed during the probe (Section 7 discusses
  /// materialization as part of the downstream pipeline).
  uint64_t materialized_bytes = 0;
  /// Registration work performed at the start of the network pass (e.g.
  /// one-sided destination regions), in virtual seconds.
  double setup_registration_seconds = 0;
  /// Registration + deregistration charged per send when buffers are
  /// registered on the fly instead of pooled (virtual seconds per send).
  double per_send_registration_seconds = 0;
};

/// Complete execution trace of one distributed join run.
struct RunTrace {
  /// Virtual bytes = actual bytes * scale_up.
  double scale_up = 1.0;
  std::vector<MachineTrace> machines;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_TIMING_TRACE_H_
