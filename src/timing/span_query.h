#ifndef RDMAJOIN_TIMING_SPAN_QUERY_H_
#define RDMAJOIN_TIMING_SPAN_QUERY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "timing/span_trace.h"

namespace rdmajoin {

/// Query engine over a SpanDataset (timing/span_trace.h): top-k selection,
/// per-stage latency distributions, concurrent-flow reconstruction and the
/// causal invariants that cross-validate the spans against the PR 3
/// attribution. All queries are read-only and deterministic (ties broken by
/// span id).

/// The `k` complete spans with the largest end-to-end duration, descending
/// (ties by ascending id).
std::vector<WrSpan> TopSpansByDuration(const SpanDataset& dataset, size_t k);

/// The `k` spans with the largest time in the interval ending at `stage`
/// (e.g. kCreditAcquired selects the worst credit waits), descending.
/// Spans missing either boundary of the interval are skipped.
std::vector<WrSpan> TopSpansByStage(const SpanDataset& dataset, SpanStage stage,
                                    size_t k);

/// Latency distribution of one stage interval across all spans that have it.
/// Percentiles are nearest-rank over the recorded population.
struct StageStats {
  SpanStage stage = SpanStage::kPosted;
  uint64_t count = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
  double total = 0;
};
StageStats ComputeStageStats(const SpanDataset& dataset, SpanStage stage);

/// Rate segments of *other* flows that overlap `span`'s fabric interval
/// [fabric-admitted, delivered] and share one of its ports (the span's
/// source egress or destination ingress) -- i.e. who the span was sharing
/// its bottleneck with, at what rate, during each interval. Empty when the
/// span has no fabric interval or no telemetry was recorded.
std::vector<FlowSegment> ConcurrentFlowSegments(const SpanDataset& dataset,
                                                const WrSpan& span);

/// Summed credit-wait stage over the spans of one thread.
double CreditWaitSeconds(const SpanDataset& dataset, uint32_t machine,
                         uint32_t thread);

/// Per-machine credit-wait of the machine's *lead* thread -- the thread that
/// finishes the network pass last, first-on-tie in (machine, thread) order;
/// exactly the thread whose credit stalls PR 3 attribution reports as the
/// machine's buffer_stall_seconds. Uses the dataset's thread marks; machines
/// without marks report 0.
std::vector<double> LeadThreadCreditWaitByMachine(const SpanDataset& dataset,
                                                  uint32_t num_machines);

/// Result of CheckSpanInvariants.
struct SpanInvariantReport {
  std::vector<std::string> violations;
  uint64_t spans_checked = 0;
  bool ok() const { return violations.empty(); }
};

/// Verifies the causal invariants of a post-run dataset:
///  1. every surviving span is complete (posted, credit, admitted, delivered,
///     completed all present -- one delivery and one completion per WR) with
///     non-negative, causally ordered stages;
///  2. the four stage intervals sum to the span duration (1e-9);
///  3. per-thread summed credit waits equal the replay's thread marks to
///     1e-9 (skipped when spans were dropped -- the sum would be partial);
///  4. per-flow segment byte conservation: integrating a flow's rate
///     segments reproduces its span's wire bytes (skipped when segments
///     were dropped or no telemetry was recorded);
///  5. execution-layer sanity when device counts are present: per opcode,
///     completions delivered <= posted and polled <= delivered.
SpanInvariantReport CheckSpanInvariants(const SpanDataset& dataset);

/// Human-readable report: recorder totals, per-stage percentiles, top-k by
/// duration and by credit-wait (each span annotated with the binding
/// constraint that dominated its fabric transit), and the invariant verdict.
std::string FormatSpanReport(const SpanDataset& dataset, size_t top_k = 5);

// ---------------------------------------------------------------------------
// Bottleneck forensics: binding-constraint attribution (schema v2 datasets).
// ---------------------------------------------------------------------------

/// Seconds spent under each binding constraint, indexed by RateConstraint
/// (kCreditStarved is filled by the span-level report, never by segments).
struct ConstraintBreakdown {
  double seconds[5] = {0, 0, 0, 0, 0};
  double labeled_total() const {
    return seconds[1] + seconds[2] + seconds[3] + seconds[4];
  }
  /// The constraint with the most seconds (ties to the lower enum value,
  /// i.e. egress before ingress before message-rate); kNone when nothing was
  /// labeled.
  RateConstraint dominant() const;
};

/// Time-weighted constraint attribution of one flow's rate segments.
ConstraintBreakdown FlowConstraintBreakdown(const SpanDataset& dataset,
                                            uint64_t flow);
/// Same, aggregated over every segment of the dataset (flow-seconds).
ConstraintBreakdown DatasetConstraintBreakdown(const SpanDataset& dataset);

struct CongestionOptions {
  /// Buckets of each per-host congestion timeline over [t_begin, t_end].
  size_t timeline_buckets = 48;
  /// Minimum distinct ingress-bound senders converging on one receiver for
  /// an interval to count as incast.
  uint32_t incast_min_senders = 3;
};

/// Per-host congestion timeline: flow-seconds per bucket whose binding
/// constraint was owned by this host, split by constraint kind. A bucket
/// where `ingress_bound` is large says "flows were queued behind this host's
/// ingress port here"; `egress_bound` says the host's own egress port was the
/// bottleneck; `msg_rate_bound` counts flows pinned below the fair share by
/// the per-host message-rate ceiling.
struct HostCongestionTimeline {
  uint32_t host = 0;
  std::vector<double> egress_bound;
  std::vector<double> ingress_bound;
  std::vector<double> msg_rate_bound;
};

/// One incast episode: >= `incast_min_senders` distinct sources
/// simultaneously ingress-bound at receiver `dst`.
struct IncastEvent {
  uint32_t dst = 0;
  double t0 = 0;
  double t1 = 0;
  /// Peak number of distinct simultaneously ingress-bound senders.
  uint32_t peak_senders = 0;
  /// Bytes the ingress-bound flows delivered into `dst` during the episode.
  double bytes = 0;
};

/// Congestion analysis over a labeled dataset: per-host constraint
/// timelines, incast episodes (per receiver, in time order) and the
/// dataset-wide constraint totals. Datasets without labels (schema v1)
/// produce empty timelines and no incasts.
struct CongestionReport {
  double t_begin = 0;
  double t_end = 0;
  double bucket_seconds = 0;
  std::vector<HostCongestionTimeline> hosts;
  std::vector<IncastEvent> incasts;
  ConstraintBreakdown totals;
};
CongestionReport ComputeCongestion(const SpanDataset& dataset,
                                   const CongestionOptions& options =
                                       CongestionOptions());

/// One line of the ranked "why is this flow slow" report: a top-duration
/// span, the constraint attribution of its fabric transit, and the verdict
/// -- the dominant transit constraint, or kCreditStarved when the span spent
/// longer waiting for a double-buffering credit than moving bytes.
struct FlowSlowEntry {
  WrSpan span;
  ConstraintBreakdown transit;
  double credit_wait_seconds = 0;
  double transit_seconds = 0;
  RateConstraint verdict = RateConstraint::kNone;
};
/// The `k` slowest complete spans, each with its constraint verdict.
std::vector<FlowSlowEntry> RankSlowFlows(const SpanDataset& dataset, size_t k);

/// Human-readable congestion report: totals, per-host timelines rendered as
/// constraint sparklines, incast episodes, and the ranked slow-flow list.
std::string FormatCongestionReport(const SpanDataset& dataset,
                                   const CongestionReport& report,
                                   size_t top_k = 5);
/// Deterministic JSON document of a congestion report (schema version 1).
std::string CongestionReportToJson(const CongestionReport& report);

/// Everything CheckConstraintInvariants needs to reconstruct the fair
/// shares: the fabric dimensions the replay ran with, plus (for runs under
/// fault injection) the per-host capacity-scale schedule. The scale
/// callbacks may be null, meaning 1.0 everywhere.
struct ConstraintCheckContext {
  SharingPolicy sharing = SharingPolicy::kEqualShare;
  uint32_t num_hosts = 0;
  /// Effective per-host capacities (egress after the congestion term, i.e.
  /// FabricConfig::EffectiveEgress()).
  double egress_bytes_per_sec = 0;
  double ingress_bytes_per_sec = 0;
  /// Per-host message-rate ceiling; <= 0 disables cap checks.
  double message_rate_per_host = 0;
  /// Capacity scale of `host` at time `t` (fault injection); null => 1.0.
  std::function<double(uint32_t host, double t)> egress_scale;
  std::function<double(uint32_t host, double t)> ingress_scale;
};
/// Builds a check context from the fabric configuration a replay used.
ConstraintCheckContext ConstraintCheckContextFromFabric(const FabricConfig& fc);

/// Verifies the binding-constraint labels of every recorded segment:
///  1. labeling: every segment moving bytes (rate > 0) carries a constraint
///     label, and the constraining host is the segment's src (egress,
///     message-rate) or dst (ingress);
///  2. tightness: on every elementary interval between segment boundaries,
///     a labeled constraint reproduces the segment's rate -- equal share
///     recomputes the exact share expressions from the reconstructed
///     per-host active counts, max-min requires the labeled port to be
///     saturated (active rates sum to its capacity) with the segment at the
///     port's maximum rate, and message-rate caps reproduce
///     wire_bytes * message_rate via the flow's span;
///  3. consistency: a flow's rate never exceeds any reconstructable share of
///     its endpoints.
/// Tightness checks are skipped when segments were dropped (the
/// reconstruction would be partial) and on intervals where any host's
/// capacity scale is 0 (stalled flows occupy fair-share denominators without
/// emitting segments).
SpanInvariantReport CheckConstraintInvariants(const SpanDataset& dataset,
                                              const ConstraintCheckContext& ctx);

}  // namespace rdmajoin

#endif  // RDMAJOIN_TIMING_SPAN_QUERY_H_
