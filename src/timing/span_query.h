#ifndef RDMAJOIN_TIMING_SPAN_QUERY_H_
#define RDMAJOIN_TIMING_SPAN_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "timing/span_trace.h"

namespace rdmajoin {

/// Query engine over a SpanDataset (timing/span_trace.h): top-k selection,
/// per-stage latency distributions, concurrent-flow reconstruction and the
/// causal invariants that cross-validate the spans against the PR 3
/// attribution. All queries are read-only and deterministic (ties broken by
/// span id).

/// The `k` complete spans with the largest end-to-end duration, descending
/// (ties by ascending id).
std::vector<WrSpan> TopSpansByDuration(const SpanDataset& dataset, size_t k);

/// The `k` spans with the largest time in the interval ending at `stage`
/// (e.g. kCreditAcquired selects the worst credit waits), descending.
/// Spans missing either boundary of the interval are skipped.
std::vector<WrSpan> TopSpansByStage(const SpanDataset& dataset, SpanStage stage,
                                    size_t k);

/// Latency distribution of one stage interval across all spans that have it.
/// Percentiles are nearest-rank over the recorded population.
struct StageStats {
  SpanStage stage = SpanStage::kPosted;
  uint64_t count = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
  double total = 0;
};
StageStats ComputeStageStats(const SpanDataset& dataset, SpanStage stage);

/// Rate segments of *other* flows that overlap `span`'s fabric interval
/// [fabric-admitted, delivered] and share one of its ports (the span's
/// source egress or destination ingress) -- i.e. who the span was sharing
/// its bottleneck with, at what rate, during each interval. Empty when the
/// span has no fabric interval or no telemetry was recorded.
std::vector<FlowSegment> ConcurrentFlowSegments(const SpanDataset& dataset,
                                                const WrSpan& span);

/// Summed credit-wait stage over the spans of one thread.
double CreditWaitSeconds(const SpanDataset& dataset, uint32_t machine,
                         uint32_t thread);

/// Per-machine credit-wait of the machine's *lead* thread -- the thread that
/// finishes the network pass last, first-on-tie in (machine, thread) order;
/// exactly the thread whose credit stalls PR 3 attribution reports as the
/// machine's buffer_stall_seconds. Uses the dataset's thread marks; machines
/// without marks report 0.
std::vector<double> LeadThreadCreditWaitByMachine(const SpanDataset& dataset,
                                                  uint32_t num_machines);

/// Result of CheckSpanInvariants.
struct SpanInvariantReport {
  std::vector<std::string> violations;
  uint64_t spans_checked = 0;
  bool ok() const { return violations.empty(); }
};

/// Verifies the causal invariants of a post-run dataset:
///  1. every surviving span is complete (posted, credit, admitted, delivered,
///     completed all present -- one delivery and one completion per WR) with
///     non-negative, causally ordered stages;
///  2. the four stage intervals sum to the span duration (1e-9);
///  3. per-thread summed credit waits equal the replay's thread marks to
///     1e-9 (skipped when spans were dropped -- the sum would be partial);
///  4. per-flow segment byte conservation: integrating a flow's rate
///     segments reproduces its span's wire bytes (skipped when segments
///     were dropped or no telemetry was recorded);
///  5. execution-layer sanity when device counts are present: per opcode,
///     completions delivered <= posted and polled <= delivered.
SpanInvariantReport CheckSpanInvariants(const SpanDataset& dataset);

/// Human-readable report: recorder totals, per-stage percentiles, top-k by
/// duration and by credit-wait, and the invariant verdict.
std::string FormatSpanReport(const SpanDataset& dataset, size_t top_k = 5);

}  // namespace rdmajoin

#endif  // RDMAJOIN_TIMING_SPAN_QUERY_H_
