#include "sched/query_profile.h"

namespace rdmajoin {

QueryProfile ProfileFromReplay(const ReplayReport& replay, const RunTrace& trace,
                               const std::string& label) {
  QueryProfile profile;
  profile.label = label;
  profile.solo_phases = replay.phases;
  profile.solo_seconds = replay.phases.TotalSeconds();
  for (size_t p = 0; p < kNumJoinPhases; ++p) {
    const uint32_t critical = replay.attribution.critical_machine[p];
    const PhaseAttribution& a =
        replay.attribution.machines[critical].phases[p];
    PhaseWork& w = profile.phases[p];
    // The critical machine's five buckets tile the global phase time
    // exactly (FinalizeAttribution), and its barrier wait is zero up to
    // rounding; folding that residual into the compute stage keeps
    // w.TotalSeconds() == solo phase time bit-for-bit.
    w.cpu_seconds = a.compute_seconds + a.barrier_wait_seconds;
    w.fault_seconds = a.fault_recovery_seconds;
    w.net_seconds = a.network_seconds;
    w.stall_seconds = a.buffer_stall_seconds;
  }
  // Peak memory: the query's full-scale input, which the histogram scan and
  // both partitioning passes keep resident (paper Section 4: in-memory
  // operator, input partitions live until build/probe consumes them).
  double input_bytes = 0;
  for (const MachineTrace& m : trace.machines) {
    input_bytes += static_cast<double>(m.histogram_bytes);
  }
  profile.memory_bytes = input_bytes * trace.scale_up;
  return profile;
}

QueryProfile BuildQueryProfile(const ClusterConfig& cluster,
                               const JoinConfig& config, const RunTrace& trace,
                               const std::string& label) {
  ReplayOptions options;
  options.spans.enabled = false;  // profile extraction needs no flight recorder
  const ReplayReport replay = ReplayTrace(cluster, config, trace, options);
  return ProfileFromReplay(replay, trace, label);
}

}  // namespace rdmajoin
