#include "sched/scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>

#include "sched/fabric_shares.h"
#include "util/json.h"

namespace rdmajoin {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Two stages (compute, network) per join phase.
constexpr size_t kNumStages = 2 * kNumJoinPhases;

bool IsNetStage(size_t stage) { return stage % 2 == 1; }

double StageWork(const QueryProfile& profile, size_t stage) {
  const PhaseWork& w = profile.phases[stage / 2];
  return IsNetStage(stage) ? w.NetworkStageSeconds() : w.ComputeStageSeconds();
}

double& PhaseField(PhaseTimes& times, size_t phase) {
  switch (phase) {
    case 0:
      return times.histogram_seconds;
    case 1:
      return times.network_partition_seconds;
    case 2:
      return times.local_partition_seconds;
    default:
      return times.build_probe_seconds;
  }
}

double PhaseFieldValue(const PhaseTimes& times, size_t phase) {
  switch (phase) {
    case 0:
      return times.histogram_seconds;
    case 1:
      return times.network_partition_seconds;
    case 2:
      return times.local_partition_seconds;
    default:
      return times.build_probe_seconds;
  }
}

/// One admitted, unfinished query inside the engine.
struct Runner {
  uint32_t id = 0;
  const QueryProfile* profile = nullptr;
  QueryOutcome* out = nullptr;
  uint32_t weight = 1;
  uint64_t admit_seq = 0;
  uint64_t net_enter_seq = 0;
  size_t stage = 0;        // 0..kNumStages; kNumStages == finished
  double remaining = 0;    // solo-seconds left in the current stage
  double stage_elapsed = 0;
  double rate = 0;         // current resource share (0 == waiting)
  WaitKind wait = WaitKind::kNone;
};

/// Folds a closed stage's elapsed wall-clock into the query's attribution,
/// splitting it between the stage's two buckets in the solo work's
/// proportion. The split is exact by construction (x + (elapsed - x) ==
/// elapsed), so the per-query buckets tile the run time bit-for-bit.
void CloseStage(Runner* r) {
  const PhaseWork& w = r->profile->phases[r->stage / 2];
  PhaseAttribution& a = r->out->attribution[r->stage / 2];
  const double elapsed = r->stage_elapsed;
  if (IsNetStage(r->stage)) {
    const double work = w.NetworkStageSeconds();
    const double stall = work > 0 ? elapsed * (w.stall_seconds / work) : 0.0;
    a.buffer_stall_seconds += stall;
    a.network_seconds += elapsed - stall;
  } else {
    const double work = w.ComputeStageSeconds();
    const double fault = work > 0 ? elapsed * (w.fault_seconds / work) : 0.0;
    a.fault_recovery_seconds += fault;
    a.compute_seconds += elapsed - fault;
  }
  r->stage_elapsed = 0;
}

/// True when the query still has network-stage work it is not currently
/// progressing on (waiting on the fabric now, or a later network stage).
bool HasPendingNetWork(const Runner& r) {
  if (r.stage >= kNumStages) return false;
  if (IsNetStage(r.stage) && r.rate <= 0) return true;
  for (size_t s = r.stage + 1; s < kNumStages; ++s) {
    if (IsNetStage(s) && StageWork(*r.profile, s) > 0) return true;
  }
  return false;
}

bool HasPendingCpuWork(const Runner& r) {
  if (r.stage >= kNumStages) return false;
  if (!IsNetStage(r.stage) && r.rate <= 0) return true;
  for (size_t s = r.stage + 1; s < kNumStages; ++s) {
    if (!IsNetStage(s) && StageWork(*r.profile, s) > 0) return true;
  }
  return false;
}

/// Tracks one resource's idle windows across charge intervals, merging
/// contiguous idle time into maximal windows.
class IdleTracker {
 public:
  IdleTracker(bool network, std::vector<SchedIdleWindow>* out)
      : network_(network), out_(out) {}

  void Observe(double t0, double t1, bool busy, int32_t candidate) {
    if (busy || candidate < 0) {
      Close();
      return;
    }
    if (!open_) {
      open_ = true;
      begin_ = t0;
      candidate_ = candidate;
    }
    end_ = t1;
  }

  void Close() {
    if (open_ && end_ > begin_) {
      out_->push_back(SchedIdleWindow{network_, begin_, end_, candidate_});
    }
    open_ = false;
  }

 private:
  bool network_;
  std::vector<SchedIdleWindow>* out_;
  bool open_ = false;
  double begin_ = 0;
  double end_ = 0;
  int32_t candidate_ = -1;
};

}  // namespace

double QueryOutcome::AttributedSeconds() const {
  double total = sched_queue_seconds;
  for (const PhaseAttribution& a : attribution) total += a.TotalSeconds();
  return total;
}

StatusOr<ScheduleReport> RunSchedule(const std::vector<SchedQuery>& queries,
                                     const SchedulerConfig& config) {
  if (queries.empty()) return Status::InvalidArgument("no queries to schedule");
  Status st = config.admission.Validate();
  if (!st.ok()) return st;
  std::unique_ptr<SchedulerPolicy> policy = MakePolicy(config.policy);
  if (policy == nullptr) {
    return Status::InvalidArgument("unknown scheduling policy");
  }
  for (const SchedQuery& q : queries) {
    if (q.weight == 0) return Status::InvalidArgument("query weight must be >= 1");
    if (!(q.arrival_seconds >= 0)) {
      return Status::InvalidArgument("arrival times must be non-negative");
    }
  }

  ScheduleReport report;
  report.policy = config.policy;
  report.queries.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryOutcome& out = report.queries[i];
    out.id = static_cast<uint32_t>(i);
    out.label = queries[i].profile.label;
    out.weight = queries[i].weight;
    out.arrival_seconds = queries[i].arrival_seconds;
    out.solo_seconds = queries[i].profile.solo_seconds;
  }

  AdmissionController ctrl(config.admission);
  FabricShareCache shares(config.fabric);
  IdleTracker net_idle(/*network=*/true, &report.idle_windows);
  IdleTracker cpu_idle(/*network=*/false, &report.idle_windows);

  // Arrival order; ties resolve in submission order.
  std::vector<uint32_t> order(queries.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return queries[a].arrival_seconds < queries[b].arrival_seconds;
  });

  std::vector<Runner> active;
  uint64_t admit_seq = 0;
  uint64_t net_seq = 0;
  size_t ai = 0;
  double t = 0;

  auto finalize = [&](QueryOutcome* out, double now) {
    out->completed = true;
    out->finish_seconds = now;
    out->latency_seconds = now - out->arrival_seconds;
  };

  // Enters the runner's next non-empty stage (assigning the network FIFO
  // sequence on network-stage entry); true when all stages are done.
  auto enter_next_stage = [&](Runner* r) -> bool {
    while (r->stage < kNumStages && StageWork(*r->profile, r->stage) <= 0) {
      ++r->stage;
    }
    if (r->stage >= kNumStages) return true;
    r->remaining = StageWork(*r->profile, r->stage);
    r->stage_elapsed = 0;
    if (IsNetStage(r->stage)) r->net_enter_seq = net_seq++;
    return false;
  };

  // Returns true when the query finished instantly (a zero-work profile).
  auto start_runner = [&](uint32_t idx, double now) -> bool {
    QueryOutcome& out = report.queries[idx];
    out.admit_seconds = now;
    // Admission-queue wait is scheduler queueing by definition.
    out.sched_queue_seconds += now - out.arrival_seconds;
    Runner r;
    r.id = idx;
    r.profile = &queries[idx].profile;
    r.out = &out;
    r.weight = queries[idx].weight;
    r.admit_seq = admit_seq++;
    if (enter_next_stage(&r)) {
      finalize(&out, now);
      return true;
    }
    active.push_back(r);
    return false;
  };

  auto admit_from_queue = [&](double now) {
    uint32_t idx = 0;
    double mem = 0;
    while (ctrl.NextAdmittable(&idx, &mem)) {
      if (start_runner(idx, now)) ctrl.OnComplete(idx, mem);
    }
  };

  std::vector<QueryView> views;
  std::vector<StageDecision> decisions;
  std::vector<uint32_t> net_weights;
  std::vector<size_t> net_members;

  // Recomputes every active query's decision and resource share. Shares are
  // piecewise-constant until the next event.
  auto recompute_rates = [&]() {
    views.clear();
    for (const Runner& r : active) {
      QueryView v;
      v.id = r.id;
      v.phase = static_cast<uint32_t>(r.stage / 2);
      v.in_net_stage = IsNetStage(r.stage);
      v.weight = r.weight;
      v.admit_seq = r.admit_seq;
      v.net_enter_seq = r.net_enter_seq;
      views.push_back(v);
    }
    policy->Decide(views, &decisions);
    uint64_t cpu_weight = 0;
    net_weights.clear();
    net_members.clear();
    for (size_t i = 0; i < active.size(); ++i) {
      if (!decisions[i].run) continue;
      if (IsNetStage(active[i].stage)) {
        net_weights.push_back(active[i].weight);
        net_members.push_back(i);
      } else {
        cpu_weight += active[i].weight;
      }
    }
    for (size_t i = 0; i < active.size(); ++i) {
      Runner& r = active[i];
      if (!decisions[i].run) {
        r.rate = 0;
        r.wait = decisions[i].wait == WaitKind::kNone ? WaitKind::kSchedQueue
                                                      : decisions[i].wait;
      } else if (!IsNetStage(r.stage)) {
        // The cluster's cores, time-shared by weight across the running
        // compute stages.
        r.rate = static_cast<double>(r.weight) / static_cast<double>(cpu_weight);
        r.wait = WaitKind::kNone;
      }
    }
    if (!net_members.empty()) {
      // Fabric shares for the concurrently running network stages, via the
      // max-min solver (sched/fabric_shares.h).
      const std::vector<double>& s = shares.Get(net_weights);
      for (size_t k = 0; k < net_members.size(); ++k) {
        active[net_members[k]].rate = s[k];
        active[net_members[k]].wait = WaitKind::kNone;
      }
    }
  };

  while (true) {
    recompute_rates();
    double t_next = kInf;
    if (ai < order.size()) t_next = queries[order[ai]].arrival_seconds;
    for (const Runner& r : active) {
      if (r.rate > 0) t_next = std::min(t_next, t + r.remaining / r.rate);
    }
    if (t_next == kInf) {
      if (!active.empty()) {
        return Status::Internal(
            "schedule deadlock: admitted queries but nothing runnable");
      }
      break;
    }
    if (t_next < t) t_next = t;
    const double dt = t_next - t;
    if (dt > 0) {
      bool net_busy = false;
      bool cpu_busy = false;
      for (Runner& r : active) {
        PhaseField(r.out->scheduled_phases, r.stage / 2) += dt;
        if (r.rate > 0) {
          r.remaining -= r.rate * dt;
          r.stage_elapsed += dt;
          (IsNetStage(r.stage) ? net_busy : cpu_busy) = true;
        } else if (r.wait == WaitKind::kBarrier) {
          r.out->attribution[r.stage / 2].barrier_wait_seconds += dt;
        } else {
          r.out->sched_queue_seconds += dt;
        }
      }
      if (config.record_idle_windows) {
        // A window is only a missed opportunity if some admitted query has
        // pending work for the idle resource.
        int32_t net_cand = -1;
        int32_t cpu_cand = -1;
        uint64_t net_best = 0;
        uint64_t cpu_best = 0;
        for (const Runner& r : active) {
          if (HasPendingNetWork(r) &&
              (net_cand < 0 || r.admit_seq < net_best)) {
            net_cand = static_cast<int32_t>(r.id);
            net_best = r.admit_seq;
          }
          if (HasPendingCpuWork(r) &&
              (cpu_cand < 0 || r.admit_seq < cpu_best)) {
            cpu_cand = static_cast<int32_t>(r.id);
            cpu_best = r.admit_seq;
          }
        }
        net_idle.Observe(t, t_next, net_busy, net_cand);
        cpu_idle.Observe(t, t_next, cpu_busy, cpu_cand);
      }
      t = t_next;
    }

    // Arrivals due now.
    while (ai < order.size() && queries[order[ai]].arrival_seconds <= t) {
      const uint32_t idx = order[ai++];
      const AdmissionOutcome ao =
          ctrl.OnArrival(idx, queries[idx].profile.memory_bytes);
      if (ao == AdmissionOutcome::kAdmitted) {
        if (start_runner(idx, t)) {
          ctrl.OnComplete(idx, queries[idx].profile.memory_bytes);
          admit_from_queue(t);
        }
      } else if (ao == AdmissionOutcome::kRejected) {
        report.queries[idx].rejected = true;
        report.queries[idx].finish_seconds = t;
      }
      // kQueued: the controller holds it until a slot frees.
    }

    // Stage completions due now. A completed stage's successor starts at the
    // rates the next recompute assigns.
    bool any_finished = false;
    for (Runner& r : active) {
      if (r.stage >= kNumStages || r.rate <= 0) continue;
      const double eps = StageWork(*r.profile, r.stage) * 1e-12 + 1e-9 * r.rate;
      if (r.remaining > eps) continue;
      CloseStage(&r);
      ++r.stage;
      if (enter_next_stage(&r)) {
        finalize(r.out, t);
        ctrl.OnComplete(r.id, r.profile->memory_bytes);
        r.stage = kNumStages;
        any_finished = true;
      }
    }
    if (any_finished) {
      active.erase(std::remove_if(active.begin(), active.end(),
                                  [](const Runner& r) {
                                    return r.stage >= kNumStages;
                                  }),
                   active.end());
      admit_from_queue(t);
    }
  }

  net_idle.Close();
  cpu_idle.Close();
  for (const QueryOutcome& out : report.queries) {
    if (out.completed) {
      ++report.completed;
      report.makespan_seconds = std::max(report.makespan_seconds,
                                         out.finish_seconds);
    } else if (out.rejected) {
      ++report.rejected;
    }
  }
  std::stable_sort(report.idle_windows.begin(), report.idle_windows.end(),
                   [](const SchedIdleWindow& a, const SchedIdleWindow& b) {
                     return a.begin_seconds < b.begin_seconds;
                   });
  return report;
}

Status CheckScheduleInvariants(const ScheduleReport& report) {
  double last_finish = 0;
  for (const QueryOutcome& q : report.queries) {
    if (q.completed && q.rejected) {
      return Status::Internal("query both completed and rejected");
    }
    if (!q.completed && !q.rejected) {
      return Status::Internal("query neither completed nor rejected");
    }
    if (q.rejected) continue;
    if (q.admit_seconds + 1e-12 < q.arrival_seconds ||
        q.finish_seconds + 1e-12 < q.admit_seconds) {
      return Status::Internal("query timeline out of order");
    }
    if (q.sched_queue_seconds < 0) {
      return Status::Internal("negative sched_queue_seconds");
    }
    for (const PhaseAttribution& a : q.attribution) {
      if (a.compute_seconds < 0 || a.network_seconds < 0 ||
          a.buffer_stall_seconds < 0 || a.barrier_wait_seconds < 0 ||
          a.fault_recovery_seconds < 0) {
        return Status::Internal("negative attribution bucket");
      }
    }
    const double err = std::fabs(q.AttributedSeconds() - q.latency_seconds);
    if (err > 1e-9) {
      return Status::Internal(
          "per-query attribution does not tile the latency: query " +
          std::to_string(q.id) + " off by " + std::to_string(err) + "s");
    }
    last_finish = std::max(last_finish, q.finish_seconds);
  }
  if (std::fabs(last_finish - report.makespan_seconds) > 1e-9) {
    return Status::Internal("makespan does not match the last completion");
  }
  for (const SchedIdleWindow& w : report.idle_windows) {
    if (!(w.end_seconds > w.begin_seconds) ||
        w.end_seconds > report.makespan_seconds + 1e-9) {
      return Status::Internal("malformed idle window");
    }
  }
  return Status::OK();
}

std::string FormatScheduleReport(const ScheduleReport& report) {
  char buf[256];
  std::string s;
  std::snprintf(buf, sizeof(buf),
                "schedule: policy=%.*s queries=%zu completed=%u rejected=%u "
                "makespan=%.4fs\n",
                static_cast<int>(SchedPolicyName(report.policy).size()),
                SchedPolicyName(report.policy).data(), report.queries.size(),
                report.completed, report.rejected, report.makespan_seconds);
  s += buf;
  for (const QueryOutcome& q : report.queries) {
    if (q.rejected) {
      std::snprintf(buf, sizeof(buf), "  q%-3u %-20s arrival=%8.4f REJECTED\n",
                    q.id, q.label.c_str(), q.arrival_seconds);
      s += buf;
      continue;
    }
    const double slowdown =
        q.solo_seconds > 0 ? q.latency_seconds / q.solo_seconds : 0;
    std::snprintf(buf, sizeof(buf),
                  "  q%-3u %-20s arrival=%8.4f finish=%8.4f latency=%8.4f "
                  "queue=%7.4f slowdown=%5.2fx\n",
                  q.id, q.label.c_str(), q.arrival_seconds, q.finish_seconds,
                  q.latency_seconds, q.sched_queue_seconds, slowdown);
    s += buf;
  }
  double net_idle = 0;
  double cpu_idle = 0;
  size_t net_cnt = 0;
  size_t cpu_cnt = 0;
  for (const SchedIdleWindow& w : report.idle_windows) {
    const double len = w.end_seconds - w.begin_seconds;
    if (w.network) {
      net_idle += len;
      ++net_cnt;
    } else {
      cpu_idle += len;
      ++cpu_cnt;
    }
  }
  std::snprintf(buf, sizeof(buf),
                "  idle: network %zu windows (%.4fs), cores %zu windows "
                "(%.4fs)\n",
                net_cnt, net_idle, cpu_cnt, cpu_idle);
  s += buf;
  return s;
}

std::string ScheduleReportToJson(const ScheduleReport& report) {
  std::string s = "{\n  \"schema\": \"rdmajoin-schedule-v1\",\n";
  s += "  \"policy\": \"" + std::string(SchedPolicyName(report.policy)) +
       "\",\n";
  s += "  \"makespan_seconds\": " + JsonNumber(report.makespan_seconds) + ",\n";
  s += "  \"completed\": " + std::to_string(report.completed) + ",\n";
  s += "  \"rejected\": " + std::to_string(report.rejected) + ",\n";
  s += "  \"queries\": [";
  for (size_t i = 0; i < report.queries.size(); ++i) {
    const QueryOutcome& q = report.queries[i];
    s += i == 0 ? "\n" : ",\n";
    s += "    {\"id\": " + std::to_string(q.id) + ", \"label\": \"" +
         JsonEscape(q.label) + "\", \"weight\": " + std::to_string(q.weight) +
         ",\n";
    s += "     \"arrival_seconds\": " + JsonNumber(q.arrival_seconds) +
         ", \"admit_seconds\": " + JsonNumber(q.admit_seconds) +
         ", \"finish_seconds\": " + JsonNumber(q.finish_seconds) + ",\n";
    s += std::string("     \"completed\": ") + (q.completed ? "true" : "false") +
         ", \"rejected\": " + (q.rejected ? "true" : "false") +
         ", \"latency_seconds\": " + JsonNumber(q.latency_seconds) +
         ", \"sched_queue_seconds\": " + JsonNumber(q.sched_queue_seconds) +
         ", \"solo_seconds\": " + JsonNumber(q.solo_seconds) + ",\n";
    s += "     \"scheduled_phases\": {";
    for (size_t p = 0; p < kNumJoinPhases; ++p) {
      if (p != 0) s += ", ";
      s += "\"" + std::string(JoinPhaseName(static_cast<JoinPhase>(p))) +
           "\": " + JsonNumber(PhaseFieldValue(q.scheduled_phases, p));
    }
    s += "},\n     \"attribution\": [";
    for (size_t p = 0; p < kNumJoinPhases; ++p) {
      const PhaseAttribution& a = q.attribution[p];
      s += p == 0 ? "" : ", ";
      s += "{\"phase\": \"" +
           std::string(JoinPhaseName(static_cast<JoinPhase>(p))) +
           "\", \"compute_seconds\": " + JsonNumber(a.compute_seconds) +
           ", \"network_seconds\": " + JsonNumber(a.network_seconds) +
           ", \"buffer_stall_seconds\": " + JsonNumber(a.buffer_stall_seconds) +
           ", \"barrier_wait_seconds\": " + JsonNumber(a.barrier_wait_seconds) +
           ", \"fault_recovery_seconds\": " +
           JsonNumber(a.fault_recovery_seconds) + "}";
    }
    s += "]}";
  }
  s += "\n  ],\n  \"idle_windows\": [";
  for (size_t i = 0; i < report.idle_windows.size(); ++i) {
    const SchedIdleWindow& w = report.idle_windows[i];
    s += i == 0 ? "\n" : ",\n";
    s += std::string("    {\"resource\": \"") +
         (w.network ? "network" : "cores") +
         "\", \"begin_seconds\": " + JsonNumber(w.begin_seconds) +
         ", \"end_seconds\": " + JsonNumber(w.end_seconds) +
         ", \"candidate_query\": " + std::to_string(w.candidate_query) + "}";
  }
  s += "\n  ]\n}\n";
  return s;
}

StatusOr<ScheduleReport> ParseScheduleReport(const std::string& json) {
  StatusOr<JsonValue> doc = ParseJson(json);
  if (!doc.ok()) return doc.status();
  if (doc->StringOr("schema", "") != "rdmajoin-schedule-v1") {
    return Status::InvalidArgument("not a rdmajoin-schedule-v1 document");
  }
  ScheduleReport report;
  StatusOr<SchedPolicy> policy = ParseSchedPolicy(doc->StringOr("policy", ""));
  if (!policy.ok()) return policy.status();
  report.policy = *policy;
  report.makespan_seconds = doc->NumberOr("makespan_seconds", 0);
  report.completed = static_cast<uint32_t>(doc->NumberOr("completed", 0));
  report.rejected = static_cast<uint32_t>(doc->NumberOr("rejected", 0));
  const JsonValue* queries = doc->Find("queries");
  if (queries == nullptr || !queries->is_array()) {
    return Status::InvalidArgument("schedule document lacks queries[]");
  }
  for (const JsonValue& jq : queries->array_items) {
    QueryOutcome q;
    q.id = static_cast<uint32_t>(jq.NumberOr("id", 0));
    q.label = jq.StringOr("label", "");
    q.weight = static_cast<uint32_t>(jq.NumberOr("weight", 1));
    q.arrival_seconds = jq.NumberOr("arrival_seconds", 0);
    q.admit_seconds = jq.NumberOr("admit_seconds", 0);
    q.finish_seconds = jq.NumberOr("finish_seconds", 0);
    q.completed = jq.BoolOr("completed", false);
    q.rejected = jq.BoolOr("rejected", false);
    q.latency_seconds = jq.NumberOr("latency_seconds", 0);
    q.sched_queue_seconds = jq.NumberOr("sched_queue_seconds", 0);
    q.solo_seconds = jq.NumberOr("solo_seconds", 0);
    if (const JsonValue* phases = jq.Find("scheduled_phases")) {
      for (size_t p = 0; p < kNumJoinPhases; ++p) {
        PhaseField(q.scheduled_phases, p) = phases->NumberOr(
            std::string(JoinPhaseName(static_cast<JoinPhase>(p))), 0);
      }
    }
    if (const JsonValue* attr = jq.Find("attribution")) {
      if (attr->is_array()) {
        for (size_t p = 0;
             p < std::min(attr->array_items.size(), kNumJoinPhases); ++p) {
          const JsonValue& ja = attr->array_items[p];
          PhaseAttribution& a = q.attribution[p];
          a.compute_seconds = ja.NumberOr("compute_seconds", 0);
          a.network_seconds = ja.NumberOr("network_seconds", 0);
          a.buffer_stall_seconds = ja.NumberOr("buffer_stall_seconds", 0);
          a.barrier_wait_seconds = ja.NumberOr("barrier_wait_seconds", 0);
          a.fault_recovery_seconds = ja.NumberOr("fault_recovery_seconds", 0);
        }
      }
    }
    report.queries.push_back(std::move(q));
  }
  if (const JsonValue* windows = doc->Find("idle_windows")) {
    if (windows->is_array()) {
      for (const JsonValue& jw : windows->array_items) {
        SchedIdleWindow w;
        w.network = jw.StringOr("resource", "network") == "network";
        w.begin_seconds = jw.NumberOr("begin_seconds", 0);
        w.end_seconds = jw.NumberOr("end_seconds", 0);
        w.candidate_query =
            static_cast<int32_t>(jw.NumberOr("candidate_query", -1));
        report.idle_windows.push_back(w);
      }
    }
  }
  return report;
}

}  // namespace rdmajoin
