#include "sched/workload_mix.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace rdmajoin {

StatusOr<std::vector<ArrivalEvent>> GenerateArrivals(
    const std::vector<MixClass>& mix, double qps, uint32_t count,
    uint64_t seed) {
  if (mix.empty()) return Status::InvalidArgument("workload mix is empty");
  if (!(qps > 0)) return Status::InvalidArgument("qps must be positive");
  double weight_sum = 0;
  for (const MixClass& c : mix) {
    if (!(c.probability_weight >= 0)) {
      return Status::InvalidArgument("mix weights must be non-negative");
    }
    weight_sum += c.probability_weight;
  }
  if (!(weight_sum > 0)) {
    return Status::InvalidArgument("mix weights sum to zero");
  }
  Random rng(seed);
  std::vector<ArrivalEvent> arrivals;
  arrivals.reserve(count);
  double t = 0;
  for (uint32_t i = 0; i < count; ++i) {
    // Exponential inter-arrival via inverse CDF; NextDouble() is in [0, 1)
    // so 1-u is in (0, 1] and the log is finite.
    const double u = rng.NextDouble();
    t += -std::log(1.0 - u) / qps;
    double pick = rng.NextDouble() * weight_sum;
    uint32_t cls = 0;
    for (size_t c = 0; c < mix.size(); ++c) {
      pick -= mix[c].probability_weight;
      if (pick <= 0) {
        cls = static_cast<uint32_t>(c);
        break;
      }
      // Rounding can leave pick slightly positive after the last class.
      cls = static_cast<uint32_t>(c);
    }
    arrivals.push_back(ArrivalEvent{t, cls});
  }
  return arrivals;
}

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double clamped = std::min(std::max(pct, 0.0), 100.0);
  size_t rank = static_cast<size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(values.size())));
  if (rank == 0) rank = 1;
  if (rank > values.size()) rank = values.size();
  return values[rank - 1];
}

TrafficSummary SummarizeTraffic(const ScheduleReport& report,
                                const std::vector<ArrivalEvent>& arrivals,
                                double qps) {
  TrafficSummary s;
  s.offered_qps = qps;
  s.offered = static_cast<uint32_t>(arrivals.size());
  s.completed = report.completed;
  s.rejected = report.rejected;
  s.makespan_seconds = report.makespan_seconds;
  std::vector<double> latencies;
  double sum = 0;
  for (const QueryOutcome& q : report.queries) {
    if (!q.completed) continue;
    latencies.push_back(q.latency_seconds);
    sum += q.latency_seconds;
    s.max_latency_seconds = std::max(s.max_latency_seconds, q.latency_seconds);
  }
  if (!latencies.empty()) {
    s.mean_latency_seconds = sum / static_cast<double>(latencies.size());
    s.p50_latency_seconds = Percentile(latencies, 50);
    s.p95_latency_seconds = Percentile(latencies, 95);
    s.p99_latency_seconds = Percentile(latencies, 99);
  }
  if (s.makespan_seconds > 0) {
    s.goodput_qps =
        static_cast<double>(s.completed) / s.makespan_seconds;
  }
  double last_arrival = 0;
  for (const ArrivalEvent& a : arrivals) {
    last_arrival = std::max(last_arrival, a.time_seconds);
  }
  s.drain_seconds = std::max(0.0, s.makespan_seconds - last_arrival);
  return s;
}

}  // namespace rdmajoin
