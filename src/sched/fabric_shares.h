#ifndef RDMAJOIN_SCHED_FABRIC_SHARES_H_
#define RDMAJOIN_SCHED_FABRIC_SHARES_H_

#include <cstdint>
#include <map>
#include <vector>

#include "sim/fabric.h"

namespace rdmajoin {

/// Per-query fabric bandwidth shares, computed through the same max-min
/// solver (sim/rate_sharing.h) that assigns rates inside the replay fabric
/// rather than through an ad-hoc formula: each concurrent query contributes
/// `weight` all-to-all demand sets (one flow per ordered host pair per unit
/// of weight) against the configured per-host egress/ingress capacities, and
/// a query's share is its aggregate solved rate normalized by the aggregate
/// a single query gets when running alone.
///
/// The returned multipliers are therefore in (0, 1]: a query whose network
/// stage runs concurrently with others progresses at multiplier x its solo
/// network rate. For n equal-weight queries on a symmetric fabric the solver
/// yields exactly 1/n each; unequal integer weights yield w_i / sum(w) until
/// a capacity asymmetry (SetHostCapacityScale-style) makes the progressive
/// filling non-trivial.
///
/// `weights[i]` is query i's weight; entries with weight 0 get multiplier 0.
/// Fabrics with fewer than two hosts have no cross-host demands; the
/// weight-proportional shares are returned directly.
std::vector<double> ComputeFabricShares(const FabricConfig& fabric,
                                        const std::vector<uint32_t>& weights);

/// Memoizing wrapper: the schedule engine recomputes shares after every
/// event, but the distinct weight vectors per run are few. The cache key is
/// the exact weight vector (order matters -- shares are returned in input
/// order), so the cache can never change a result.
class FabricShareCache {
 public:
  explicit FabricShareCache(const FabricConfig& fabric) : fabric_(fabric) {}

  const std::vector<double>& Get(const std::vector<uint32_t>& weights);

 private:
  FabricConfig fabric_;
  // std::map: deterministic and the key count is tiny (no hashing of
  // vectors, no unordered iteration anywhere near output).
  std::map<std::vector<uint32_t>, std::vector<double>> cache_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_SCHED_FABRIC_SHARES_H_
