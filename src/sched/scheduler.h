#ifndef RDMAJOIN_SCHED_SCHEDULER_H_
#define RDMAJOIN_SCHED_SCHEDULER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sched/admission.h"
#include "sched/policy.h"
#include "sched/query_profile.h"
#include "sim/fabric.h"
#include "timing/attribution.h"
#include "timing/phase_times.h"
#include "util/statusor.h"

namespace rdmajoin {

/// One query submitted to the scheduler.
struct SchedQuery {
  QueryProfile profile;
  /// Virtual arrival time (open-loop: arrivals do not wait for completions).
  double arrival_seconds = 0;
  /// Scheduling weight; doubles as priority under kWeightedFair.
  uint32_t weight = 1;
};

struct SchedulerConfig {
  SchedPolicy policy = SchedPolicy::kOverlap;
  AdmissionConfig admission;
  /// Fabric model used to turn concurrent network stages into per-query
  /// bandwidth shares via the max-min solver (sched/fabric_shares.h).
  /// Typically ClusterConfig::fabric with num_hosts set to the machine
  /// count.
  FabricConfig fabric;
  /// Record resource idle windows (the explain --utilization per-query
  /// view). Never changes any scheduled time.
  bool record_idle_windows = true;
};

/// Final state of one submitted query. For completed queries the scheduled
/// attribution tiles the latency exactly:
///
///   latency = sched_queue_seconds + sum over phases of
///             (compute + network + buffer_stall + barrier_wait +
///              fault_recovery)
///
/// to 1e-9 (CheckScheduleInvariants pins this down). sched_queue_seconds is
/// the new bucket this subsystem adds to the PR 3 taxonomy: time lost to the
/// scheduler's own decisions -- waiting in the admission queue, behind the
/// serial run queue, or for the overlap policy's fabric token. Inter-query
/// phase-alignment waits land in the existing barrier_wait bucket of the
/// phase the query was stalled in.
struct QueryOutcome {
  uint32_t id = 0;
  std::string label;
  uint32_t weight = 1;
  double arrival_seconds = 0;
  /// When the admission controller granted the slot (== arrival when the
  /// query was admitted immediately; meaningless for rejected queries).
  double admit_seconds = 0;
  double finish_seconds = 0;
  bool completed = false;
  bool rejected = false;
  /// finish - arrival (completed queries only).
  double latency_seconds = 0;
  /// The new wait bucket; see the struct comment.
  double sched_queue_seconds = 0;
  /// Scheduled wall-clock per phase (running time plus in-phase waits).
  PhaseTimes scheduled_phases;
  /// Per-phase decomposition of the scheduled run, same buckets as the solo
  /// attribution (timing/attribution.h).
  std::array<PhaseAttribution, kNumJoinPhases> attribution;
  /// The profile's solo makespan, for slowdown factors in reports.
  double solo_seconds = 0;

  /// sched_queue_seconds + the attribution buckets; equals latency_seconds
  /// to 1e-9 for completed queries.
  double AttributedSeconds() const;
};

/// A maximal interval where a resource sat idle while admitted queries
/// existed that will eventually need it -- the filled/unfilled gap view that
/// PR 8's co-scheduling ranking pointed at.
struct SchedIdleWindow {
  /// True: the fabric was idle (no network stage running). False: the cores
  /// were idle (no compute stage running).
  bool network = false;
  double begin_seconds = 0;
  double end_seconds = 0;
  /// The admitted query that could have been rescheduled to fill the
  /// window (earliest-admitted active query), or -1 if none.
  int32_t candidate_query = -1;
};

struct ScheduleReport {
  SchedPolicy policy = SchedPolicy::kSerial;
  std::vector<QueryOutcome> queries;  // input order
  /// Completion time of the last completed query (0 when none completed).
  double makespan_seconds = 0;
  uint32_t completed = 0;
  uint32_t rejected = 0;
  std::vector<SchedIdleWindow> idle_windows;
};

/// Runs the fluid discrete-event schedule: each query is a chain of
/// compute/network stages (two per join phase, from its solo profile), a
/// stage progresses at the query's current resource share, and shares are
/// piecewise-constant between events (arrivals, admissions, stage
/// completions). Compute shares time-share the cluster's cores by weight;
/// network shares come from the max-min fabric solver over the concurrently
/// running network stages. The policy decides, after every event, which
/// admitted queries may progress and which wait (and in which bucket the
/// wait lands).
StatusOr<ScheduleReport> RunSchedule(const std::vector<SchedQuery>& queries,
                                     const SchedulerConfig& config);

/// Verifies the per-query accounting: every completed query's buckets plus
/// sched_queue tile its latency to 1e-9, waits are non-negative, and the
/// makespan matches the outcomes. Internal error on violation.
Status CheckScheduleInvariants(const ScheduleReport& report);

/// Human-readable per-query table plus totals.
std::string FormatScheduleReport(const ScheduleReport& report);

/// Deterministic JSON (schema rdmajoin-schedule-v1; shortest round-trip
/// numbers, fixed member order, no timestamps). Consumed by
/// tools/rdmajoin_explain --utilization --sched=FILE.
std::string ScheduleReportToJson(const ScheduleReport& report);

/// Inverse of ScheduleReportToJson (tolerant reader).
StatusOr<ScheduleReport> ParseScheduleReport(const std::string& json);

}  // namespace rdmajoin

#endif  // RDMAJOIN_SCHED_SCHEDULER_H_
