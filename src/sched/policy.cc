#include "sched/policy.h"

#include <algorithm>
#include <limits>

namespace rdmajoin {

std::string_view SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kSerial:
      return "serial";
    case SchedPolicy::kPhaseAligned:
      return "phase-aligned";
    case SchedPolicy::kOverlap:
      return "overlap";
    case SchedPolicy::kWeightedFair:
      return "weighted-fair";
  }
  return "unknown";
}

StatusOr<SchedPolicy> ParseSchedPolicy(std::string_view name) {
  for (size_t i = 0; i < kNumSchedPolicies; ++i) {
    const SchedPolicy p = static_cast<SchedPolicy>(i);
    if (name == SchedPolicyName(p)) return p;
  }
  return Status::InvalidArgument("unknown scheduling policy: '" +
                                 std::string(name) +
                                 "' (serial, phase-aligned, overlap, "
                                 "weighted-fair)");
}

namespace {

/// One query at a time, in admission order.
class SerialPolicy : public SchedulerPolicy {
 public:
  SchedPolicy kind() const override { return SchedPolicy::kSerial; }
  void Decide(const std::vector<QueryView>& active,
              std::vector<StageDecision>* decisions) const override {
    decisions->assign(active.size(), StageDecision{});
    if (active.empty()) return;
    size_t head = 0;
    for (size_t i = 1; i < active.size(); ++i) {
      if (active[i].admit_seq < active[head].admit_seq) head = i;
    }
    for (size_t i = 0; i < active.size(); ++i) {
      if (i == head) {
        (*decisions)[i].run = true;
      } else {
        // Waiting behind the head of the run queue is pure scheduler
        // queueing, exactly like waiting in the admission queue.
        (*decisions)[i].wait = WaitKind::kSchedQueue;
      }
    }
  }
};

/// Lockstep phase alignment: only the queries at the minimum phase index
/// run. This reproduces the ReplayConcurrent sharing model -- and with it
/// the bench finding that phase-aligned co-scheduling of identical queries
/// on a saturated cluster equals serial execution.
class PhaseAlignedPolicy : public SchedulerPolicy {
 public:
  SchedPolicy kind() const override { return SchedPolicy::kPhaseAligned; }
  void Decide(const std::vector<QueryView>& active,
              std::vector<StageDecision>* decisions) const override {
    decisions->assign(active.size(), StageDecision{});
    if (active.empty()) return;
    uint32_t min_phase = std::numeric_limits<uint32_t>::max();
    for (const QueryView& q : active) min_phase = std::min(min_phase, q.phase);
    for (size_t i = 0; i < active.size(); ++i) {
      if (active[i].phase == min_phase) {
        (*decisions)[i].run = true;
      } else {
        // A query ahead of the pack stalls at the inter-query phase
        // barrier; the time lands in its current phase's barrier_wait.
        (*decisions)[i].wait = WaitKind::kBarrier;
      }
    }
  }
};

/// Gap-fill overlap: every compute stage runs; the fabric is a single
/// exclusive token granted FIFO by network-stage entry order, so exactly one
/// query's network pass is in flight while the others burn their
/// compute-bound phases. Waiting for the token is scheduler queueing.
class OverlapPolicy : public SchedulerPolicy {
 public:
  SchedPolicy kind() const override { return SchedPolicy::kOverlap; }
  void Decide(const std::vector<QueryView>& active,
              std::vector<StageDecision>* decisions) const override {
    decisions->assign(active.size(), StageDecision{});
    size_t token = active.size();
    for (size_t i = 0; i < active.size(); ++i) {
      if (!active[i].in_net_stage) continue;
      if (token == active.size() ||
          active[i].net_enter_seq < active[token].net_enter_seq) {
        token = i;
      }
    }
    for (size_t i = 0; i < active.size(); ++i) {
      if (!active[i].in_net_stage) {
        (*decisions)[i].run = true;  // compute stages always progress
      } else if (i == token) {
        (*decisions)[i].run = true;  // holds the fabric token
      } else {
        (*decisions)[i].wait = WaitKind::kSchedQueue;
      }
    }
  }
};

/// Everything runs; the engine turns the weights into core and fabric
/// shares.
class WeightedFairPolicy : public SchedulerPolicy {
 public:
  SchedPolicy kind() const override { return SchedPolicy::kWeightedFair; }
  void Decide(const std::vector<QueryView>& active,
              std::vector<StageDecision>* decisions) const override {
    decisions->assign(active.size(), StageDecision{});
    for (size_t i = 0; i < active.size(); ++i) (*decisions)[i].run = true;
  }
};

}  // namespace

std::unique_ptr<SchedulerPolicy> MakePolicy(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kSerial:
      return std::make_unique<SerialPolicy>();
    case SchedPolicy::kPhaseAligned:
      return std::make_unique<PhaseAlignedPolicy>();
    case SchedPolicy::kOverlap:
      return std::make_unique<OverlapPolicy>();
    case SchedPolicy::kWeightedFair:
      return std::make_unique<WeightedFairPolicy>();
  }
  return nullptr;
}

}  // namespace rdmajoin
