#include "sched/admission.h"

namespace rdmajoin {

Status AdmissionConfig::Validate() const {
  if (memory_budget_bytes < 0) {
    return Status::InvalidArgument("memory budget must be non-negative");
  }
  return Status::OK();
}

bool AdmissionController::Fits(double memory_bytes) const {
  if (config_.max_concurrent > 0 && running_ >= config_.max_concurrent) {
    return false;
  }
  if (config_.memory_budget_bytes > 0 &&
      memory_in_use_ + memory_bytes > config_.memory_budget_bytes) {
    return false;
  }
  return true;
}

AdmissionOutcome AdmissionController::OnArrival(uint32_t query,
                                                double memory_bytes) {
  // A query larger than the entire budget can never run; queueing it would
  // wedge the FIFO head forever.
  if (config_.memory_budget_bytes > 0 &&
      memory_bytes > config_.memory_budget_bytes) {
    return AdmissionOutcome::kRejected;
  }
  // FIFO: an arrival never overtakes queued queries even if it would fit.
  if (queue_.empty() && Fits(memory_bytes)) {
    ++running_;
    memory_in_use_ += memory_bytes;
    return AdmissionOutcome::kAdmitted;
  }
  if (config_.max_queue_length > 0 &&
      queue_.size() >= config_.max_queue_length) {
    return AdmissionOutcome::kRejected;
  }
  queue_.push_back(Waiting{query, memory_bytes});
  return AdmissionOutcome::kQueued;
}

void AdmissionController::OnComplete(uint32_t /*query*/, double memory_bytes) {
  if (running_ > 0) --running_;
  memory_in_use_ -= memory_bytes;
  if (memory_in_use_ < 0) memory_in_use_ = 0;
}

bool AdmissionController::NextAdmittable(uint32_t* query,
                                         double* memory_bytes) {
  if (queue_.empty() || !Fits(queue_.front().memory_bytes)) return false;
  *query = queue_.front().query;
  *memory_bytes = queue_.front().memory_bytes;
  ++running_;
  memory_in_use_ += queue_.front().memory_bytes;
  queue_.pop_front();
  return true;
}

}  // namespace rdmajoin
