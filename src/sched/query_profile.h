#ifndef RDMAJOIN_SCHED_QUERY_PROFILE_H_
#define RDMAJOIN_SCHED_QUERY_PROFILE_H_

#include <array>
#include <string>

#include "cluster/cluster.h"
#include "join/join_config.h"
#include "timing/attribution.h"
#include "timing/phase_times.h"
#include "timing/replay.h"
#include "timing/trace.h"

namespace rdmajoin {

/// What one join phase costs a query when it runs alone, split into the
/// scheduler's two resource stages. The fluid schedule engine
/// (sched/scheduler.h) models each phase as a compute stage (the cluster's
/// cores) followed by a network stage (the fabric): a query progressing at
/// share s burns solo-seconds of stage work at rate s.
struct PhaseWork {
  /// Compute stage: the solo critical machine's compute_seconds (plus its
  /// zero-up-to-rounding barrier_wait residual, folded in to keep the solo
  /// phase tiling exact).
  double cpu_seconds = 0;
  /// Compute-stage share attributable to injected faults (straggler
  /// slowdown); charged to the fault_recovery bucket pro rata.
  double fault_seconds = 0;
  /// Network stage: the solo critical machine's network_seconds.
  double net_seconds = 0;
  /// Network-stage share spent in credit back-pressure; charged to the
  /// buffer_stall bucket pro rata.
  double stall_seconds = 0;

  double ComputeStageSeconds() const { return cpu_seconds + fault_seconds; }
  double NetworkStageSeconds() const { return net_seconds + stall_seconds; }
  double TotalSeconds() const {
    return ComputeStageSeconds() + NetworkStageSeconds();
  }
};

/// A query's resource demand profile, extracted from a solo timing replay of
/// its captured trace. The per-phase stage works sum exactly to the solo
/// phase times (the critical machine's five attribution buckets tile the
/// global phase time by construction, and its barrier wait is zero), so a
/// schedule that runs the query alone at full shares reproduces the solo
/// makespan exactly.
struct QueryProfile {
  std::string label;
  /// Indexed by JoinPhase.
  std::array<PhaseWork, kNumJoinPhases> phases;
  /// Global phase times of the solo replay.
  PhaseTimes solo_phases;
  /// Solo makespan (solo_phases.TotalSeconds()).
  double solo_seconds = 0;
  /// Estimated peak memory footprint in virtual (full-scale) bytes: the
  /// query's total input, which both partitioning passes hold resident.
  /// Feeds the admission controller's memory budget.
  double memory_bytes = 0;
};

/// Replays `trace` solo against the cluster model and distills the
/// scheduler-facing profile. The replay itself (spans, attribution) is
/// discarded; callers wanting it should run ReplayTrace themselves.
QueryProfile BuildQueryProfile(const ClusterConfig& cluster,
                               const JoinConfig& config, const RunTrace& trace,
                               const std::string& label);

/// Same, from an already-computed solo replay report (avoids replaying
/// twice when the caller needs the full report anyway).
QueryProfile ProfileFromReplay(const ReplayReport& replay, const RunTrace& trace,
                               const std::string& label);

}  // namespace rdmajoin

#endif  // RDMAJOIN_SCHED_QUERY_PROFILE_H_
