#ifndef RDMAJOIN_SCHED_WORKLOAD_MIX_H_
#define RDMAJOIN_SCHED_WORKLOAD_MIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sched/scheduler.h"
#include "util/statusor.h"

namespace rdmajoin {

/// One query class of a mixed workload (e.g. "small", "medium", "large"
/// joins). `profile_index` points into the caller's profile vector;
/// `probability_weight` is the class's relative arrival frequency.
struct MixClass {
  std::string label;
  uint32_t profile_index = 0;
  double probability_weight = 1.0;
};

/// One generated arrival of the open-loop driver.
struct ArrivalEvent {
  double time_seconds = 0;
  uint32_t class_index = 0;
};

/// Seeded-deterministic open-loop Poisson arrival process: `count` arrivals
/// at rate `qps`, each drawn from `mix` by probability weight. Open-loop
/// means arrival times never depend on completions -- the serving-stack
/// regime (Rödiger et al., "High-Speed Query Processing over High-Speed
/// Networks") where latency percentiles under offered load are the honest
/// metric. Inter-arrival gaps are -ln(1-u)/qps with u from the repo's
/// xorshift64* generator (util/random.h), so a fixed (seed, qps, count, mix)
/// reproduces the byte-identical arrival sequence on every platform.
StatusOr<std::vector<ArrivalEvent>> GenerateArrivals(
    const std::vector<MixClass>& mix, double qps, uint32_t count,
    uint64_t seed);

/// Nearest-rank percentile (EXPERIMENTS.md documents the methodology):
/// the ceil(pct/100 * N)-th smallest value; 0 on empty input. Copies and
/// sorts.
double Percentile(std::vector<double> values, double pct);

/// Latency/throughput summary of one scheduled open-loop run.
struct TrafficSummary {
  double offered_qps = 0;
  uint32_t offered = 0;
  uint32_t completed = 0;
  uint32_t rejected = 0;
  double p50_latency_seconds = 0;
  double p95_latency_seconds = 0;
  double p99_latency_seconds = 0;
  double mean_latency_seconds = 0;
  double max_latency_seconds = 0;
  /// Completion time of the last query.
  double makespan_seconds = 0;
  /// Completed queries per second of makespan (goodput under offered load).
  double goodput_qps = 0;
  /// How long past the last arrival the system kept draining; bounded drain
  /// is the sustainability criterion (sched/docs/scheduling.md).
  double drain_seconds = 0;
};

/// Distills a schedule report (plus the offered rate that produced it) into
/// the traffic summary.
TrafficSummary SummarizeTraffic(const ScheduleReport& report,
                                const std::vector<ArrivalEvent>& arrivals,
                                double qps);

}  // namespace rdmajoin

#endif  // RDMAJOIN_SCHED_WORKLOAD_MIX_H_
