#include "sched/fabric_shares.h"

#include <limits>

#include "sim/rate_sharing.h"

namespace rdmajoin {

namespace {

/// Aggregate max-min rate of an all-to-all demand set with `copies[i]`
/// duplicate flows per ordered host pair for tenant i, solved against the
/// fabric's per-host capacities. Returns per-tenant aggregates.
std::vector<double> SolveAggregates(const FabricConfig& fabric,
                                    const std::vector<uint32_t>& copies) {
  const uint32_t n = fabric.num_hosts;
  std::vector<RateDemand> demands;
  std::vector<uint32_t> owner;  // tenant index per demand
  for (uint32_t t = 0; t < copies.size(); ++t) {
    for (uint32_t c = 0; c < copies[t]; ++c) {
      for (uint32_t s = 0; s < n; ++s) {
        for (uint32_t d = 0; d < n; ++d) {
          if (s == d) continue;
          demands.push_back(RateDemand{
              s, d, std::numeric_limits<double>::infinity(), 0.0});
          owner.push_back(t);
        }
      }
    }
  }
  std::vector<double> aggregates(copies.size(), 0.0);
  if (demands.empty()) return aggregates;
  std::vector<double> egress_left(n, fabric.EffectiveEgress());
  std::vector<double> ingress_left(n, fabric.ingress_bytes_per_sec);
  SolveMaxMinRates(&demands, &egress_left, &ingress_left);
  for (size_t i = 0; i < demands.size(); ++i) {
    aggregates[owner[i]] += demands[i].rate;
  }
  return aggregates;
}

}  // namespace

std::vector<double> ComputeFabricShares(const FabricConfig& fabric,
                                        const std::vector<uint32_t>& weights) {
  std::vector<double> shares(weights.size(), 0.0);
  if (weights.empty()) return shares;
  uint64_t weight_sum = 0;
  for (uint32_t w : weights) weight_sum += w;
  if (weight_sum == 0) return shares;
  if (fabric.num_hosts < 2) {
    // No cross-host traffic to solve for; fall back to weight proportions.
    for (size_t i = 0; i < weights.size(); ++i) {
      shares[i] = static_cast<double>(weights[i]) /
                  static_cast<double>(weight_sum);
    }
    return shares;
  }
  // Solo reference: one query of weight 1 owning the whole fabric.
  const std::vector<double> solo = SolveAggregates(fabric, {1});
  if (!(solo[0] > 0)) return shares;
  const std::vector<double> together = SolveAggregates(fabric, weights);
  for (size_t i = 0; i < weights.size(); ++i) {
    shares[i] = together[i] / solo[0];
  }
  return shares;
}

const std::vector<double>& FabricShareCache::Get(
    const std::vector<uint32_t>& weights) {
  auto it = cache_.find(weights);
  if (it != cache_.end()) return it->second;
  return cache_.emplace(weights, ComputeFabricShares(fabric_, weights))
      .first->second;
}

}  // namespace rdmajoin
