#ifndef RDMAJOIN_SCHED_POLICY_H_
#define RDMAJOIN_SCHED_POLICY_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace rdmajoin {

/// The pluggable co-scheduling policies (docs/scheduling.md has the
/// taxonomy). All four run on the same fluid discrete-event engine
/// (sched/scheduler.h); they differ only in which admitted queries may make
/// progress at each instant.
enum class SchedPolicy : uint8_t {
  /// One query at a time, in admission order. The serial baseline every
  /// other policy is measured against.
  kSerial = 0,
  /// All queries advance through the join's phases in lockstep: only the
  /// queries at the minimum phase index run, everyone else waits at the
  /// inter-query barrier. This is the ReplayConcurrent model -- and the
  /// bench-proven "gains exactly nothing on a saturated cluster" baseline.
  kPhaseAligned,
  /// Gap-fill overlap: compute stages always run (time-sharing cores), but
  /// the fabric is granted to one query at a time in FIFO order, so one
  /// query's network pass overlaps the others' compute-bound phases. The
  /// policy the paper's Section 7 asks for.
  kOverlap,
  /// Everything runs; per-query weights set both the core time-share and the
  /// max-min fabric share (weight doubles as priority).
  kWeightedFair,
};

inline constexpr size_t kNumSchedPolicies = 4;

/// Stable kebab-case name, e.g. "phase-aligned".
std::string_view SchedPolicyName(SchedPolicy policy);

/// Inverse of SchedPolicyName; InvalidArgument on unknown names.
StatusOr<SchedPolicy> ParseSchedPolicy(std::string_view name);

/// Why a query is not making progress right now. Decides which attribution
/// bucket the wait lands in: kSchedQueue charges the new
/// sched_queue_seconds bucket (time lost to the scheduler's queueing
/// decisions), kBarrier charges barrier_wait_seconds of the query's current
/// phase (time lost to inter-query phase alignment).
enum class WaitKind : uint8_t { kNone = 0, kSchedQueue, kBarrier };

/// What the engine shows a policy about one admitted, unfinished query.
struct QueryView {
  /// Stable query id (index into the schedule's input order).
  uint32_t id = 0;
  /// Current join phase, 0..kNumJoinPhases-1.
  uint32_t phase = 0;
  /// True when the query's current stage is the network (fabric) stage of
  /// `phase`; false during the compute stage.
  bool in_net_stage = false;
  /// Scheduling weight (= priority under kWeightedFair).
  uint32_t weight = 1;
  /// Admission order: lower admitted earlier. Unique.
  uint64_t admit_seq = 0;
  /// FIFO order of entry into the current network stage (valid only when
  /// in_net_stage). Unique among net-stage queries.
  uint64_t net_enter_seq = 0;
};

/// Per-query verdict for the current instant.
struct StageDecision {
  bool run = false;
  WaitKind wait = WaitKind::kNone;  // meaningful only when !run
};

/// Strategy interface: given the admitted, unfinished queries (sorted by
/// admit_seq), decide which may progress. Called by the engine after every
/// event; must be deterministic and depend only on the views passed in.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;
  virtual SchedPolicy kind() const = 0;
  /// Fills `decisions` (same size/order as `active`).
  virtual void Decide(const std::vector<QueryView>& active,
                      std::vector<StageDecision>* decisions) const = 0;
};

/// Factory for the built-in policies.
std::unique_ptr<SchedulerPolicy> MakePolicy(SchedPolicy policy);

}  // namespace rdmajoin

#endif  // RDMAJOIN_SCHED_POLICY_H_
