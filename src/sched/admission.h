#ifndef RDMAJOIN_SCHED_ADMISSION_H_
#define RDMAJOIN_SCHED_ADMISSION_H_

#include <cstdint>
#include <deque>

#include "util/status.h"

namespace rdmajoin {

/// Limits the admission controller enforces at query arrival. Zero means
/// unlimited for every knob, so the default config admits everything
/// immediately (the single-query world).
struct AdmissionConfig {
  /// Maximum queries running (admitted, unfinished) at once.
  uint32_t max_concurrent = 0;
  /// Maximum queries waiting in the run queue; an arrival that finds the
  /// queue full is rejected outright (a first-class outcome, not an error).
  uint32_t max_queue_length = 0;
  /// Aggregate memory budget across running queries, in virtual bytes. A
  /// query whose own footprint exceeds the whole budget can never run and is
  /// rejected even from an empty system.
  double memory_budget_bytes = 0;

  Status Validate() const;
};

/// What happened to an arriving query.
enum class AdmissionOutcome : uint8_t { kAdmitted = 0, kQueued, kRejected };

/// Bounded run-queue with a concurrency limit and a memory budget.
/// Deterministic and time-free: the schedule engine owns the clock and calls
/// OnArrival / OnComplete / NextAdmittable in event order. FIFO with
/// head-of-line blocking: a queued query only admits when it reaches the
/// queue head and both the concurrency slot and its memory reservation fit
/// (no smaller query jumps the queue -- latency fairness over packing).
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config)
      : config_(config) {}

  /// Decides an arriving query's fate. kAdmitted reserves its slot and
  /// memory immediately; kQueued parks it (in arrival order); kRejected
  /// leaves no state behind.
  AdmissionOutcome OnArrival(uint32_t query, double memory_bytes);

  /// Releases a running query's slot and memory reservation.
  void OnComplete(uint32_t query, double memory_bytes);

  /// Pops the queue head if it can now run, reserving its resources.
  /// Returns true and stores the query id; false when the queue is empty or
  /// the head still does not fit. Call repeatedly after each OnComplete.
  bool NextAdmittable(uint32_t* query, double* memory_bytes);

  uint32_t running() const { return running_; }
  size_t queue_length() const { return queue_.size(); }
  double memory_in_use_bytes() const { return memory_in_use_; }

 private:
  struct Waiting {
    uint32_t query;
    double memory_bytes;
  };

  bool Fits(double memory_bytes) const;

  AdmissionConfig config_;
  uint32_t running_ = 0;
  double memory_in_use_ = 0;
  std::deque<Waiting> queue_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_SCHED_ADMISSION_H_
