#include "operators/sort_merge_join.h"

#include <algorithm>

#include "join/assignment.h"
#include "join/exchange.h"
#include "join/histogram.h"
#include "join/partitioner.h"
#include "operators/radix_sort.h"
#include "operators/sort_utils.h"
#include "transport/collectives.h"

namespace rdmajoin {

StatusOr<JoinRunResult> DistributedSortMergeJoin::Run(
    const DistributedRelation& inner, const DistributedRelation& outer) {
  RDMAJOIN_RETURN_IF_ERROR(cluster_.Validate());
  RDMAJOIN_RETURN_IF_ERROR(config_.Validate());
  const uint32_t nm = cluster_.num_machines;
  if (inner.chunks.size() != nm || outer.chunks.size() != nm) {
    return Status::InvalidArgument(
        "relations must be fragmented over exactly num_machines machines");
  }
  if (inner.tuple_bytes() != outer.tuple_bytes()) {
    return Status::InvalidArgument("relations must share one tuple width");
  }
  const uint32_t target_ranges = uint32_t{1} << config_.network_radix_bits;
  const double scale = config_.scale_up;
  auto virt = [scale](uint64_t actual) {
    return static_cast<uint64_t>(static_cast<double>(actual) * scale);
  };

  JoinRunResult result;
  result.trace.scale_up = scale;
  // Sorting replaces the local radix pass (no local_pass_bytes recorded).
  result.trace.machines.resize(nm);

  std::vector<MemorySpace> memories;
  memories.reserve(nm);
  for (uint32_t m = 0; m < nm; ++m) {
    memories.emplace_back(cluster_.memory_per_machine_bytes);
  }
  std::vector<std::unique_ptr<ScopedReservation>> reservations;
  for (uint32_t m = 0; m < nm; ++m) {
    reservations.push_back(std::make_unique<ScopedReservation>(&memories[m]));
    RDMAJOIN_RETURN_IF_ERROR(reservations[m]->Add(
        virt(inner.chunks[m].size_bytes() + outer.chunks[m].size_bytes())));
  }

  // ---- Phase 0: splitter selection + range histogram exchange. ----
  // Every machine contributes an evenly spaced sample of its outer chunk
  // (the larger relation dominates range balance); samples are all-gathered
  // and the quantiles become the range splitters.
  const uint64_t samples_per_machine = std::max<uint64_t>(16ull * target_ranges / nm,
                                                          256);
  std::vector<uint64_t> sample_pool;
  if (nm > 1) {
    auto collectives = CollectiveNetwork::Create(nm, samples_per_machine,
                                                 cluster_.costs, config_.validator);
    RDMAJOIN_RETURN_IF_ERROR(collectives.status());
    std::vector<std::vector<uint64_t>> contributions(nm);
    for (uint32_t m = 0; m < nm; ++m) {
      contributions[m] = SampleKeys(outer.chunks[m], samples_per_machine);
    }
    auto views = (*collectives)->AllGather(contributions);
    RDMAJOIN_RETURN_IF_ERROR(views.status());
    sample_pool = (*views)[0];  // Every machine holds the same pool.
  } else {
    sample_pool = SampleKeys(outer.chunks[0], samples_per_machine);
  }
  std::vector<uint64_t> splitters =
      SplittersFromSamples(std::move(sample_pool), target_ranges - 1);
  RangePartitioner partitioner(std::move(splitters));
  const uint32_t ranges = partitioner.num_partitions();

  // Range histograms (the analogue of the radix histograms of Section 4.1).
  GenericHistograms hist_r = ComputeHistogramsWith(inner, partitioner);
  GenericHistograms hist_s = ComputeHistogramsWith(outer, partitioner);
  const double port_bandwidth = cluster_.transport == TransportKind::kTcp
                                    ? cluster_.tcp.bytes_per_sec
                                    : cluster_.fabric.EffectiveEgress();
  const double exchange_seconds = CollectiveNetwork::ExchangeSeconds(
      nm,
      (2ull * ranges + samples_per_machine) * sizeof(uint64_t),
      port_bandwidth, cluster_.fabric.base_latency_seconds);
  for (uint32_t m = 0; m < nm; ++m) {
    result.trace.machines[m].histogram_bytes =
        inner.chunks[m].size_bytes() + outer.chunks[m].size_bytes();
    result.trace.machines[m].histogram_exchange_seconds = exchange_seconds;
  }

  // Contiguous ranges are dealt round-robin (or skew-aware) like partitions.
  std::vector<uint32_t> assignment;
  if (config_.assignment == AssignmentPolicy::kRoundRobin) {
    assignment = RoundRobinAssignment(ranges, nm);
  } else {
    std::vector<uint64_t> combined(ranges);
    for (uint32_t p = 0; p < ranges; ++p) {
      combined[p] = hist_r.global[p] + hist_s.global[p];
    }
    assignment = SkewAwareAssignment(combined, nm);
  }

  // ---- Phase 1: network range-partitioning pass. ----
  Exchange exchange(cluster_, config_, &partitioner, assignment,
                    {hist_r.global, hist_s.global});
  std::vector<MemorySpace*> memory_ptrs;
  std::vector<ScopedReservation*> reservation_ptrs;
  for (uint32_t m = 0; m < nm; ++m) {
    memory_ptrs.push_back(&memories[m]);
    reservation_ptrs.push_back(reservations[m].get());
  }
  auto exchanged = exchange.Run({&inner, &outer}, memory_ptrs, reservation_ptrs,
                                &result.trace);
  RDMAJOIN_RETURN_IF_ERROR(exchanged.status());
  result.net.virtual_wire_bytes = exchanged->virtual_wire_bytes;
  result.net.messages_sent = exchanged->messages_sent;
  result.net.pool_buffers_created = exchanged->pool_buffers_created;
  result.net.pool_acquisitions = exchanged->pool_acquisitions;
  result.net.setup_registration_seconds = exchanged->max_setup_registration_seconds;

  // ---- Phase 2 + 3: local sort of each range, then merge join. ----
  for (uint32_t m = 0; m < nm; ++m) {
    MachineTrace& mt = result.trace.machines[m];
    for (uint32_t p = 0; p < ranges; ++p) {
      if (assignment[p] != m) continue;
      Relation& rp = exchanged->stores[m]->Rel(p, 0);
      Relation& sp = exchanged->stores[m]->Rel(p, 1);
      mt.sort_bytes += rp.size_bytes() + sp.size_bytes();
      RadixSortByKey(&rp);
      RadixSortByKey(&sp);
      mt.merge_tasks.push_back(
          static_cast<double>(rp.size_bytes() + sp.size_bytes()));
      MergeJoinSorted(rp, sp,
                      [&](uint64_t key, uint64_t inner_rid, uint64_t outer_rid) {
                        ++result.stats.matches;
                        result.stats.key_sum += key;
                        result.stats.inner_rid_sum += inner_rid;
                        if (config_.materialize_results) {
                          result.stats.pairs.emplace_back(inner_rid, outer_rid);
                        }
                      });
    }
  }

  ReplayOptions replay_options;
  replay_options.metrics = config_.metrics;
  replay_options.spans.enabled = config_.enable_spans;
  if (config_.span_budget_bytes > 0) {
    replay_options.spans.max_bytes = config_.span_budget_bytes;
  }
  replay_options.span_recorder = config_.span_recorder;
  result.replay = ReplayTrace(cluster_, config_, result.trace, replay_options);
  result.times = result.replay.phases;
  return result;
}

}  // namespace rdmajoin
