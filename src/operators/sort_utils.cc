#include "operators/sort_utils.h"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace rdmajoin {

void SortRelationByKey(Relation* rel) {
  const uint64_t n = rel->num_tuples();
  if (n <= 1) return;
  std::vector<uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [rel](uint64_t a, uint64_t b) {
    return rel->Key(a) < rel->Key(b);
  });
  Relation sorted(rel->tuple_bytes());
  sorted.Resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::memcpy(sorted.TupleAt(i), rel->TupleAt(order[i]), rel->tuple_bytes());
  }
  *rel = std::move(sorted);
}

bool IsSortedByKey(const Relation& rel) {
  for (uint64_t i = 1; i < rel.num_tuples(); ++i) {
    if (rel.Key(i - 1) > rel.Key(i)) return false;
  }
  return true;
}

void MergeJoinSorted(const Relation& inner, const Relation& outer,
                     const std::function<void(uint64_t, uint64_t, uint64_t)>& emit) {
  uint64_t i = 0, j = 0;
  const uint64_t ni = inner.num_tuples(), no = outer.num_tuples();
  while (i < ni && j < no) {
    const uint64_t ki = inner.Key(i);
    const uint64_t kj = outer.Key(j);
    if (ki < kj) {
      ++i;
    } else if (ki > kj) {
      ++j;
    } else {
      // Equal-key runs on both sides: emit the cross product.
      uint64_t i_end = i + 1;
      while (i_end < ni && inner.Key(i_end) == ki) ++i_end;
      uint64_t j_end = j + 1;
      while (j_end < no && outer.Key(j_end) == ki) ++j_end;
      for (uint64_t a = i; a < i_end; ++a) {
        for (uint64_t b = j; b < j_end; ++b) {
          emit(ki, inner.Rid(a), outer.Rid(b));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
}

std::vector<uint64_t> SampleKeys(const Relation& rel, uint64_t count) {
  std::vector<uint64_t> samples;
  samples.reserve(count);
  const uint64_t n = rel.num_tuples();
  for (uint64_t k = 0; k < count; ++k) {
    if (n == 0) {
      samples.push_back(UINT64_MAX);
    } else {
      // Evenly spaced positions across the chunk.
      samples.push_back(rel.Key(k * n / count));
    }
  }
  return samples;
}

std::vector<uint64_t> SplittersFromSamples(std::vector<uint64_t> samples,
                                           uint32_t num_splitters) {
  std::sort(samples.begin(), samples.end());
  std::vector<uint64_t> splitters;
  splitters.reserve(num_splitters);
  const uint64_t n = samples.size();
  for (uint32_t q = 1; q <= num_splitters; ++q) {
    const uint64_t idx = static_cast<uint64_t>(q) * n / (num_splitters + 1);
    const uint64_t v = samples[std::min(idx, n - 1)];
    if (v == UINT64_MAX) continue;  // Padding from undersized chunks.
    if (splitters.empty() || v > splitters.back()) splitters.push_back(v);
  }
  return splitters;
}

}  // namespace rdmajoin
