#ifndef RDMAJOIN_OPERATORS_PLAN_H_
#define RDMAJOIN_OPERATORS_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "join/join_config.h"
#include "util/statusor.h"
#include "workload/relation.h"

namespace rdmajoin {

/// A minimal distributed query-plan layer over the library's operators,
/// making the paper's framing concrete: "we treated the join operation as
/// part of an operator pipeline in which the result of the join is
/// materialized at a later point in the query execution" (Section 7).
///
/// Plans are trees of PlanNodes. Executing a node yields a
/// DistributedRelation (fragmented across the cluster's machines) plus the
/// accumulated virtual execution time of the subtree. Scans and filters are
/// machine-local (their time is a barrier-synchronized scan); joins and
/// aggregations run the full distributed operators, network pass included.

struct PlanContext {
  ClusterConfig cluster;
  JoinConfig config;
};

struct PlanOutput {
  DistributedRelation relation;
  /// Virtual seconds consumed by this subtree (operators run serially).
  double seconds = 0;
  /// Rows produced.
  uint64_t rows = 0;
};

class PlanNode {
 public:
  virtual ~PlanNode() = default;
  /// Executes the subtree rooted here.
  virtual StatusOr<PlanOutput> Execute(const PlanContext& ctx) = 0;
  /// Operator name for EXPLAIN-style printing.
  virtual std::string Name() const = 0;
  virtual std::vector<const PlanNode*> Children() const = 0;
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

/// Leaf: scans an already-loaded distributed relation (zero cost -- the
/// paper's joins also start from loaded data).
PlanNodePtr Scan(const DistributedRelation* relation, std::string label = "scan");

/// Filter: keeps tuples for which `predicate(key, rid)` is true. Runs
/// machine-local at the histogram scan rate.
PlanNodePtr Filter(PlanNodePtr child,
                   std::function<bool(uint64_t key, uint64_t rid)> predicate,
                   std::string label = "filter");

/// Map: rewrites each tuple's key/rid (e.g. re-keying for the next join).
/// Machine-local at the histogram scan rate.
PlanNodePtr Map(PlanNodePtr child,
                std::function<std::pair<uint64_t, uint64_t>(uint64_t, uint64_t)> fn,
                std::string label = "map");

/// Distributed radix hash join of the two children (inner = left). Produces
/// the materialized <join_key, inner_rid> result, partitioned by key.
PlanNodePtr HashJoin(PlanNodePtr inner, PlanNodePtr outer,
                     std::string label = "hash_join");

/// Distributed sort-merge join (the Section 7 alternative operator).
PlanNodePtr SortMergeJoin(PlanNodePtr inner, PlanNodePtr outer,
                          std::string label = "sort_merge_join");

/// Distributed group-by aggregation: COUNT/SUM(rid) per key; produces one
/// <key, sum> tuple per group.
PlanNodePtr Aggregate(PlanNodePtr child, std::string label = "aggregate");

/// Renders the plan tree ("explain"), one operator per line.
std::string ExplainPlan(const PlanNode& root);

}  // namespace rdmajoin

#endif  // RDMAJOIN_OPERATORS_PLAN_H_
