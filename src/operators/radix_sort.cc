#include "operators/radix_sort.h"

#include <cstring>
#include <vector>

namespace rdmajoin {

uint32_t RadixSortPasses(uint64_t max_key) {
  uint32_t passes = 0;
  do {
    ++passes;
    max_key >>= 8;
  } while (max_key != 0);
  return passes;
}

void RadixSortByKey(Relation* rel) {
  const uint64_t n = rel->num_tuples();
  if (n <= 1) return;
  uint64_t max_key = 0;
  for (uint64_t i = 0; i < n; ++i) max_key = std::max(max_key, rel->Key(i));
  const uint32_t passes = RadixSortPasses(max_key);
  const uint32_t width = rel->tuple_bytes();

  Relation scratch(width);
  scratch.Resize(n);
  Relation* src = rel;
  Relation* dst = &scratch;
  for (uint32_t pass = 0; pass < passes; ++pass) {
    const uint32_t shift = pass * 8;
    uint64_t counts[256] = {0};
    for (uint64_t i = 0; i < n; ++i) ++counts[(src->Key(i) >> shift) & 0xFF];
    uint64_t offsets[256];
    uint64_t running = 0;
    for (int d = 0; d < 256; ++d) {
      offsets[d] = running;
      running += counts[d];
    }
    for (uint64_t i = 0; i < n; ++i) {
      const uint32_t digit = (src->Key(i) >> shift) & 0xFF;
      std::memcpy(dst->TupleAt(offsets[digit]++), src->TupleAt(i), width);
    }
    std::swap(src, dst);
  }
  if (src != rel) {
    // Odd pass count: the sorted data sits in the scratch buffer.
    *rel = std::move(scratch);
  }
}

}  // namespace rdmajoin
