#ifndef RDMAJOIN_OPERATORS_SORT_MERGE_JOIN_H_
#define RDMAJOIN_OPERATORS_SORT_MERGE_JOIN_H_

#include <utility>

#include "cluster/cluster.h"
#include "join/distributed_join.h"
#include "join/join_config.h"
#include "util/statusor.h"
#include "workload/relation.h"

namespace rdmajoin {

/// Distributed sort-merge join over RDMA: the Section 7 generalization of
/// the paper's techniques to a second join operator, in the style the
/// related-work comparison (Kim et al. [19], Albutiu et al. [2], Balkesen et
/// al. [3]) contrasts with the radix hash join.
///
/// Phases:
///   0. Sample-based splitter selection + histogram exchange: every machine
///      samples its outer chunk, the samples are all-gathered over the
///      control plane, and 2^network_radix_bits - 1 range splitters are
///      derived; range histograms size the destination buffers.
///   1. Network range-partitioning pass: identical machinery to the hash
///      join (pooled RDMA buffers, double buffering, interleaving), but
///      partitioning by range so each machine receives a contiguous key
///      range.
///   2. Local sort of every received range (both relations).
///   3. Merge join of the sorted runs, range by range.
///
/// Returns the same JoinRunResult as DistributedJoin; the build/probe phase
/// carries the merge work. With the calibrated cost model the radix hash
/// join wins (sorting is comparison-bound), matching the paper's choice of
/// algorithm and the conclusion of [3].
class DistributedSortMergeJoin {
 public:
  DistributedSortMergeJoin(ClusterConfig cluster, JoinConfig config)
      : cluster_(std::move(cluster)), config_(std::move(config)) {}

  StatusOr<JoinRunResult> Run(const DistributedRelation& inner,
                              const DistributedRelation& outer);

 private:
  ClusterConfig cluster_;
  JoinConfig config_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_OPERATORS_SORT_MERGE_JOIN_H_
