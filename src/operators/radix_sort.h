#ifndef RDMAJOIN_OPERATORS_RADIX_SORT_H_
#define RDMAJOIN_OPERATORS_RADIX_SORT_H_

#include <cstdint>

#include "workload/relation.h"

namespace rdmajoin {

/// LSB radix sort of a relation by join key: 8-bit digits, counting passes,
/// ping-pong buffers. O(k * n) with k = ceil(significant_bits / 8); the
/// kernel the distributed sort-merge join would use on real hardware (the
/// hardware-conscious alternative to the comparison sort, cf. Kim et al.
/// [19] / Balkesen et al. [3]). Stable.
void RadixSortByKey(Relation* rel);

/// Number of 8-bit counting passes RadixSortByKey would run for `max_key`.
uint32_t RadixSortPasses(uint64_t max_key);

}  // namespace rdmajoin

#endif  // RDMAJOIN_OPERATORS_RADIX_SORT_H_
