#include "operators/plan.h"

#include <algorithm>

#include "join/distributed_join.h"
#include "operators/distributed_aggregate.h"
#include "operators/sort_merge_join.h"

namespace rdmajoin {

namespace {

/// Barrier-synchronized machine-local scan time over a fragmented relation.
double LocalScanSeconds(const PlanContext& ctx, const DistributedRelation& rel) {
  double worst = 0;
  for (const Relation& chunk : rel.chunks) {
    const double vbytes =
        static_cast<double>(chunk.size_bytes()) * ctx.config.scale_up;
    worst = std::max(worst, vbytes / (ctx.cluster.cores_per_machine *
                                      ctx.cluster.costs.histogram_bytes_per_sec));
  }
  return worst;
}

class ScanNode : public PlanNode {
 public:
  ScanNode(const DistributedRelation* relation, std::string label)
      : relation_(relation), label_(std::move(label)) {}
  StatusOr<PlanOutput> Execute(const PlanContext& ctx) override {
    if (relation_->chunks.size() != ctx.cluster.num_machines) {
      return Status::InvalidArgument(
          "scanned relation is not fragmented over the plan's cluster");
    }
    PlanOutput out;
    // Copy the fragments; the source stays loaded (as in the paper's setup).
    out.relation.chunks = relation_->chunks;
    out.rows = out.relation.total_tuples();
    return out;
  }
  std::string Name() const override { return label_; }
  std::vector<const PlanNode*> Children() const override { return {}; }

 private:
  const DistributedRelation* relation_;
  std::string label_;
};

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanNodePtr child, std::function<bool(uint64_t, uint64_t)> predicate,
             std::string label)
      : child_(std::move(child)),
        predicate_(std::move(predicate)),
        label_(std::move(label)) {}
  StatusOr<PlanOutput> Execute(const PlanContext& ctx) override {
    auto in = child_->Execute(ctx);
    RDMAJOIN_RETURN_IF_ERROR(in.status());
    PlanOutput out;
    out.seconds = in->seconds + LocalScanSeconds(ctx, in->relation);
    for (Relation& chunk : in->relation.chunks) {
      Relation kept(chunk.tuple_bytes());
      for (uint64_t i = 0; i < chunk.num_tuples(); ++i) {
        if (predicate_(chunk.Key(i), chunk.Rid(i))) {
          kept.AppendRaw(chunk.TupleAt(i), 1);
        }
      }
      out.relation.chunks.push_back(std::move(kept));
    }
    out.rows = out.relation.total_tuples();
    return out;
  }
  std::string Name() const override { return label_; }
  std::vector<const PlanNode*> Children() const override { return {child_.get()}; }

 private:
  PlanNodePtr child_;
  std::function<bool(uint64_t, uint64_t)> predicate_;
  std::string label_;
};

class MapNode : public PlanNode {
 public:
  MapNode(PlanNodePtr child,
          std::function<std::pair<uint64_t, uint64_t>(uint64_t, uint64_t)> fn,
          std::string label)
      : child_(std::move(child)), fn_(std::move(fn)), label_(std::move(label)) {}
  StatusOr<PlanOutput> Execute(const PlanContext& ctx) override {
    auto in = child_->Execute(ctx);
    RDMAJOIN_RETURN_IF_ERROR(in.status());
    PlanOutput out;
    out.seconds = in->seconds + LocalScanSeconds(ctx, in->relation);
    for (Relation& chunk : in->relation.chunks) {
      Relation mapped(chunk.tuple_bytes());
      mapped.Resize(chunk.num_tuples());
      for (uint64_t i = 0; i < chunk.num_tuples(); ++i) {
        const auto [key, rid] = fn_(chunk.Key(i), chunk.Rid(i));
        mapped.SetTuple(i, key, rid);
      }
      out.relation.chunks.push_back(std::move(mapped));
    }
    out.rows = out.relation.total_tuples();
    return out;
  }
  std::string Name() const override { return label_; }
  std::vector<const PlanNode*> Children() const override { return {child_.get()}; }

 private:
  PlanNodePtr child_;
  std::function<std::pair<uint64_t, uint64_t>(uint64_t, uint64_t)> fn_;
  std::string label_;
};

class JoinNode : public PlanNode {
 public:
  JoinNode(PlanNodePtr inner, PlanNodePtr outer, bool sort_merge, std::string label)
      : inner_(std::move(inner)),
        outer_(std::move(outer)),
        sort_merge_(sort_merge),
        label_(std::move(label)) {}
  StatusOr<PlanOutput> Execute(const PlanContext& ctx) override {
    auto lhs = inner_->Execute(ctx);
    RDMAJOIN_RETURN_IF_ERROR(lhs.status());
    auto rhs = outer_->Execute(ctx);
    RDMAJOIN_RETURN_IF_ERROR(rhs.status());
    JoinConfig config = ctx.config;
    config.materialize_results = true;
    PlanOutput out;
    if (sort_merge_) {
      DistributedSortMergeJoin join(ctx.cluster, config);
      auto result = join.Run(lhs->relation, rhs->relation);
      RDMAJOIN_RETURN_IF_ERROR(result.status());
      // The sort-merge join reports pairs globally; rebuild per-machine
      // output from its pairs is already keyed; use stats only.
      out.relation = BuildOutputFromPairs(ctx, result->stats);
      out.seconds = lhs->seconds + rhs->seconds + result->times.TotalSeconds();
      out.rows = result->stats.matches;
      return out;
    }
    DistributedJoin join(ctx.cluster, config);
    auto result = join.Run(lhs->relation, rhs->relation);
    RDMAJOIN_RETURN_IF_ERROR(result.status());
    out.relation = std::move(result->output);
    out.seconds = lhs->seconds + rhs->seconds + result->times.TotalSeconds();
    out.rows = result->stats.matches;
    return out;
  }
  std::string Name() const override { return label_; }
  std::vector<const PlanNode*> Children() const override {
    return {inner_.get(), outer_.get()};
  }

 private:
  /// The sort-merge operator does not thread per-machine outputs; distribute
  /// its pairs round-robin (keys already range-partitioned upstream).
  DistributedRelation BuildOutputFromPairs(const PlanContext& ctx,
                                           const JoinResultStats& stats) const {
    DistributedRelation rel;
    rel.chunks.assign(ctx.cluster.num_machines, Relation(kNarrowTupleBytes));
    for (size_t i = 0; i < stats.pairs.size(); ++i) {
      rel.chunks[i % rel.chunks.size()].Append(stats.pairs[i].first,
                                               stats.pairs[i].second);
    }
    return rel;
  }

  PlanNodePtr inner_;
  PlanNodePtr outer_;
  bool sort_merge_;
  std::string label_;
};

class AggregateNode : public PlanNode {
 public:
  AggregateNode(PlanNodePtr child, std::string label)
      : child_(std::move(child)), label_(std::move(label)) {}
  StatusOr<PlanOutput> Execute(const PlanContext& ctx) override {
    auto in = child_->Execute(ctx);
    RDMAJOIN_RETURN_IF_ERROR(in.status());
    JoinConfig config = ctx.config;
    config.materialize_results = true;
    DistributedAggregate aggregate(ctx.cluster, config);
    auto result = aggregate.Run(in->relation);
    RDMAJOIN_RETURN_IF_ERROR(result.status());
    PlanOutput out;
    out.relation = std::move(result->output);
    out.seconds = in->seconds + result->times.TotalSeconds();
    out.rows = result->stats.groups;
    return out;
  }
  std::string Name() const override { return label_; }
  std::vector<const PlanNode*> Children() const override { return {child_.get()}; }

 private:
  PlanNodePtr child_;
  std::string label_;
};

void ExplainInto(const PlanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.Name());
  out->append("\n");
  for (const PlanNode* child : node.Children()) {
    ExplainInto(*child, depth + 1, out);
  }
}

}  // namespace

PlanNodePtr Scan(const DistributedRelation* relation, std::string label) {
  return std::make_unique<ScanNode>(relation, std::move(label));
}

PlanNodePtr Filter(PlanNodePtr child,
                   std::function<bool(uint64_t, uint64_t)> predicate,
                   std::string label) {
  return std::make_unique<FilterNode>(std::move(child), std::move(predicate),
                                      std::move(label));
}

PlanNodePtr Map(PlanNodePtr child,
                std::function<std::pair<uint64_t, uint64_t>(uint64_t, uint64_t)> fn,
                std::string label) {
  return std::make_unique<MapNode>(std::move(child), std::move(fn),
                                   std::move(label));
}

PlanNodePtr HashJoin(PlanNodePtr inner, PlanNodePtr outer, std::string label) {
  return std::make_unique<JoinNode>(std::move(inner), std::move(outer),
                                    /*sort_merge=*/false, std::move(label));
}

PlanNodePtr SortMergeJoin(PlanNodePtr inner, PlanNodePtr outer, std::string label) {
  return std::make_unique<JoinNode>(std::move(inner), std::move(outer),
                                    /*sort_merge=*/true, std::move(label));
}

PlanNodePtr Aggregate(PlanNodePtr child, std::string label) {
  return std::make_unique<AggregateNode>(std::move(child), std::move(label));
}

std::string ExplainPlan(const PlanNode& root) {
  std::string out;
  ExplainInto(root, 0, &out);
  return out;
}

}  // namespace rdmajoin
