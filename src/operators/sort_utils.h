#ifndef RDMAJOIN_OPERATORS_SORT_UTILS_H_
#define RDMAJOIN_OPERATORS_SORT_UTILS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "workload/relation.h"

namespace rdmajoin {

/// Sorts a relation by join key (stable), rewriting it in place via an index
/// sort plus one gather pass (tuples may be wide; rows move once).
void SortRelationByKey(Relation* rel);

/// Returns true if `rel` is sorted by key (non-decreasing).
bool IsSortedByKey(const Relation& rel);

/// Merge-joins two relations sorted by key, invoking
/// `emit(key, inner_rid, outer_rid)` for every matching pair. Handles
/// duplicate keys on both sides (block-nested within equal-key runs).
void MergeJoinSorted(const Relation& inner, const Relation& outer,
                     const std::function<void(uint64_t, uint64_t, uint64_t)>& emit);

/// Picks up to `count` evenly spaced sample keys from a relation chunk,
/// padding with UINT64_MAX when the chunk is smaller than `count` (so
/// collective exchanges stay fixed-size).
std::vector<uint64_t> SampleKeys(const Relation& rel, uint64_t count);

/// Derives `num_splitters` range splitters (strictly increasing) from a pool
/// of sampled keys: the q-quantiles of the sorted sample, deduplicated.
std::vector<uint64_t> SplittersFromSamples(std::vector<uint64_t> samples,
                                           uint32_t num_splitters);

}  // namespace rdmajoin

#endif  // RDMAJOIN_OPERATORS_SORT_UTILS_H_
