#include "operators/distributed_aggregate.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "join/assignment.h"
#include "join/exchange.h"
#include "join/histogram.h"
#include "join/partitioner.h"
#include "transport/collectives.h"

namespace rdmajoin {

StatusOr<AggregateRunResult> DistributedAggregate::Run(
    const DistributedRelation& input) {
  RDMAJOIN_RETURN_IF_ERROR(cluster_.Validate());
  RDMAJOIN_RETURN_IF_ERROR(config_.Validate());
  const uint32_t nm = cluster_.num_machines;
  if (input.chunks.size() != nm) {
    return Status::InvalidArgument(
        "input must be fragmented over exactly num_machines machines");
  }
  const uint32_t b1 = config_.network_radix_bits;
  const uint32_t parts = uint32_t{1} << b1;
  const double scale = config_.scale_up;
  auto virt = [scale](uint64_t actual) {
    return static_cast<uint64_t>(static_cast<double>(actual) * scale);
  };

  AggregateRunResult result;
  result.trace.scale_up = scale;
  // Aggregation consumes partitions directly: no local pass is recorded.
  result.trace.machines.resize(nm);

  std::vector<MemorySpace> memories;
  memories.reserve(nm);
  for (uint32_t m = 0; m < nm; ++m) {
    memories.emplace_back(cluster_.memory_per_machine_bytes);
  }
  std::vector<std::unique_ptr<ScopedReservation>> reservations;
  for (uint32_t m = 0; m < nm; ++m) {
    reservations.push_back(std::make_unique<ScopedReservation>(&memories[m]));
    RDMAJOIN_RETURN_IF_ERROR(
        reservations[m]->Add(virt(input.chunks[m].size_bytes())));
  }

  // Histogram + control-plane exchange.
  RelationHistograms hist = ComputeHistograms(input, b1);
  if (nm > 1) {
    auto collectives = CollectiveNetwork::Create(nm, parts, cluster_.costs,
                                                 config_.validator);
    RDMAJOIN_RETURN_IF_ERROR(collectives.status());
    auto reduced = (*collectives)->AllReduceSum(hist.per_machine);
    RDMAJOIN_RETURN_IF_ERROR(reduced.status());
    hist.global = *reduced;
  }
  const double port_bandwidth = cluster_.transport == TransportKind::kTcp
                                    ? cluster_.tcp.bytes_per_sec
                                    : cluster_.fabric.EffectiveEgress();
  const double exchange_seconds = CollectiveNetwork::ExchangeSeconds(
      nm, parts * sizeof(uint64_t), port_bandwidth,
      cluster_.fabric.base_latency_seconds);
  for (uint32_t m = 0; m < nm; ++m) {
    result.trace.machines[m].histogram_bytes = input.chunks[m].size_bytes();
    result.trace.machines[m].histogram_exchange_seconds = exchange_seconds;
  }

  std::vector<uint32_t> assignment;
  if (config_.assignment == AssignmentPolicy::kRoundRobin) {
    assignment = RoundRobinAssignment(parts, nm);
  } else {
    assignment = SkewAwareAssignment(hist.global, nm);
  }

  // Network pass: one input relation.
  RadixPartitioner partitioner(b1);
  Exchange exchange(cluster_, config_, &partitioner, assignment, {hist.global});
  std::vector<MemorySpace*> memory_ptrs;
  std::vector<ScopedReservation*> reservation_ptrs;
  for (uint32_t m = 0; m < nm; ++m) {
    memory_ptrs.push_back(&memories[m]);
    reservation_ptrs.push_back(reservations[m].get());
  }
  auto exchanged = exchange.Run({&input}, memory_ptrs, reservation_ptrs,
                                &result.trace);
  RDMAJOIN_RETURN_IF_ERROR(exchanged.status());
  result.messages_sent = exchanged->messages_sent;
  result.virtual_wire_bytes = exchanged->virtual_wire_bytes;

  // Machine-local hash aggregation of each assigned partition.
  for (uint32_t m = 0; m < nm; ++m) {
    MachineTrace& mt = result.trace.machines[m];
    Relation output_chunk(kNarrowTupleBytes);
    for (uint32_t p = 0; p < parts; ++p) {
      if (assignment[p] != m) continue;
      const Relation& part = exchanged->stores[m]->Rel(p, 0);
      if (part.empty()) continue;
      // The aggregation table is built once per partition at build speed;
      // no probe side exists.
      mt.tasks.push_back(BuildProbeTask{static_cast<double>(part.size_bytes()), 0.0,
                                        static_cast<double>(part.size_bytes())});
      std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> groups;
      groups.reserve(part.num_tuples());
      for (uint64_t i = 0; i < part.num_tuples(); ++i) {
        auto& [count, sum] = groups[part.Key(i)];
        ++count;
        sum += part.Rid(i);
      }
      // Emit groups in ascending key order: the materialized output feeds
      // byte-compared artifacts, so the hash table's iteration order must
      // not reach it (the determinism contract, docs/correctness.md).
      std::vector<std::pair<uint64_t, std::pair<uint64_t, uint64_t>>> sorted;
      sorted.reserve(groups.size());
      // lint: order-insensitive(drained into a vector and sorted by key below)
      for (const auto& [key, agg] : groups) sorted.emplace_back(key, agg);
      std::sort(sorted.begin(), sorted.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (const auto& [key, agg] : sorted) {
        ++result.stats.groups;
        result.stats.total_count += agg.first;
        result.stats.value_sum += agg.second;
        result.stats.group_key_sum += key;
        if (config_.materialize_results) output_chunk.Append(key, agg.second);
      }
    }
    if (config_.materialize_results) {
      mt.materialized_bytes = output_chunk.size_bytes();
      result.output.chunks.push_back(std::move(output_chunk));
    }
  }

  ReplayOptions replay_options;
  replay_options.metrics = config_.metrics;
  replay_options.spans.enabled = config_.enable_spans;
  if (config_.span_budget_bytes > 0) {
    replay_options.spans.max_bytes = config_.span_budget_bytes;
  }
  replay_options.span_recorder = config_.span_recorder;
  result.replay = ReplayTrace(cluster_, config_, result.trace, replay_options);
  result.times = result.replay.phases;
  return result;
}

}  // namespace rdmajoin
