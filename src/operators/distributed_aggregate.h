#ifndef RDMAJOIN_OPERATORS_DISTRIBUTED_AGGREGATE_H_
#define RDMAJOIN_OPERATORS_DISTRIBUTED_AGGREGATE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "join/join_config.h"
#include "timing/phase_times.h"
#include "timing/replay.h"
#include "timing/trace.h"
#include "util/statusor.h"
#include "workload/relation.h"

namespace rdmajoin {

/// Aggregated output of a distributed group-by. With the library's
/// workloads, every field has a closed-form expected value (counts and sums
/// are conserved across the network), so runs verify end to end.
struct AggregateResultStats {
  /// Number of distinct group keys.
  uint64_t groups = 0;
  /// Sum over groups of their tuple counts (== input cardinality).
  uint64_t total_count = 0;
  /// Sum (mod 2^64) over all input tuples of the aggregated value (the
  /// tuple's rid field plays the role of the measure column).
  uint64_t value_sum = 0;
  /// Sum (mod 2^64) of the distinct group keys.
  uint64_t group_key_sum = 0;
};

struct AggregateRunResult {
  AggregateResultStats stats;
  PhaseTimes times;
  ReplayReport replay;
  RunTrace trace;
  uint64_t messages_sent = 0;
  double virtual_wire_bytes = 0;
  /// When JoinConfig::materialize_results is set: one <group_key, sum>
  /// tuple per group, partitioned by key across machines.
  DistributedRelation output;
};

/// Distributed group-by aggregation (COUNT + SUM per key) built from the
/// same primitives as the join -- the Section 7 claim that RDMA buffer
/// pooling, buffer reuse and interleaving "can be used to create distributed
/// versions of many database operators" made concrete: histogram exchange,
/// radix partitioning into pooled RDMA buffers, then machine-local hash
/// aggregation of each partition. There is no second relation, no local
/// repartitioning pass, and the result stays partitioned across machines.
class DistributedAggregate {
 public:
  DistributedAggregate(ClusterConfig cluster, JoinConfig config)
      : cluster_(std::move(cluster)), config_(std::move(config)) {}

  /// Groups `input` by key, aggregating COUNT(*) and SUM(rid).
  StatusOr<AggregateRunResult> Run(const DistributedRelation& input);

 private:
  ClusterConfig cluster_;
  JoinConfig config_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_OPERATORS_DISTRIBUTED_AGGREGATE_H_
