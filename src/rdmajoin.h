#ifndef RDMAJOIN_RDMAJOIN_H_
#define RDMAJOIN_RDMAJOIN_H_

/// Umbrella header for the rdmajoin library: everything a downstream user
/// needs to run distributed RDMA joins, aggregations and pipelines on the
/// simulated rack, plus the Section 5 analytical model.
///
///   #include "rdmajoin.h"
///
///   using namespace rdmajoin;
///   auto cluster  = FdrCluster(4);
///   auto workload = GenerateWorkload({.inner_tuples = 1'000'000,
///                                     .outer_tuples = 2'000'000}, 4);
///   DistributedJoin join(cluster, JoinConfig{.scale_up = 64.0});
///   auto result = join.Run(workload->inner, workload->outer);

#include "cluster/cluster.h"          // IWYU pragma: export
#include "cluster/cost_model.h"       // IWYU pragma: export
#include "cluster/memory_space.h"     // IWYU pragma: export
#include "cluster/presets.h"          // IWYU pragma: export
#include "join/distributed_join.h"    // IWYU pragma: export
#include "join/join_config.h"         // IWYU pragma: export
#include "join/report.h"              // IWYU pragma: export
#include "model/analytical_model.h"   // IWYU pragma: export
#include "model/planner.h"            // IWYU pragma: export
#include "operators/distributed_aggregate.h"  // IWYU pragma: export
#include "operators/plan.h"           // IWYU pragma: export
#include "operators/sort_merge_join.h"  // IWYU pragma: export
#include "timing/replay.h"            // IWYU pragma: export
#include "timing/trace_io.h"          // IWYU pragma: export
#include "util/status.h"              // IWYU pragma: export
#include "util/statusor.h"            // IWYU pragma: export
#include "workload/generator.h"       // IWYU pragma: export

#endif  // RDMAJOIN_RDMAJOIN_H_
