#ifndef RDMAJOIN_MODEL_PARAMETERS_H_
#define RDMAJOIN_MODEL_PARAMETERS_H_

#include <cstdint>

#include "cluster/cluster.h"
#include "util/status.h"

namespace rdmajoin {

/// The symbols of Table 1, in the paper's units (MB decimal, MB/s).
///
/// The paper's formulas assume one receiver core per machine, writing the
/// partitioning thread count as NC/M - 1; here the partitioning thread count
/// is carried explicitly so configurations without a reserved receiver core
/// (the QPI server preset) use the same equations.
struct ModelParams {
  /// |R|: size of the inner relation in MB.
  double inner_mb = 0;
  /// |S|: size of the outer relation in MB.
  double outer_mb = 0;
  /// NM: number of machines.
  uint32_t num_machines = 1;
  /// NC/M: cores per machine.
  uint32_t cores_per_machine = 1;
  /// Partitioning threads per machine (NC/M - 1 when a receiver core is
  /// reserved).
  uint32_t partitioning_threads = 1;
  /// psPart.: partitioning speed of one thread [MB/s].
  double ps_part = 955.0;
  /// netmax: network bandwidth per host [MB/s], already including any
  /// congestion penalty (Eq. 15).
  double net_max = 3400.0;
  /// hbThread: hash-table build speed of one thread [MB/s].
  double hb_thread = 4000.0;
  /// hpThread: hash-table probe speed of one thread [MB/s].
  double hp_thread = 4000.0;
  /// p: number of partitioning passes (network pass + p-1 local passes).
  uint32_t num_passes = 2;
  /// Histogram scan speed of one thread [MB/s] (an addition to the paper's
  /// model so that the histogram phase of the figures can be estimated too).
  double hist_thread = 6000.0;

  Status Validate() const;
};

/// Derives model parameters from a cluster preset and a workload size
/// (virtual, full-scale bytes).
ModelParams ParamsFromCluster(const ClusterConfig& cluster, uint64_t inner_bytes,
                              uint64_t outer_bytes, uint32_t num_passes = 2);

}  // namespace rdmajoin

#endif  // RDMAJOIN_MODEL_PARAMETERS_H_
