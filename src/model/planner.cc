#include "model/planner.h"

namespace rdmajoin {

ModelParams ParamsAtMachineCount(const ClusterConfig& base, uint32_t machines,
                                 uint64_t inner_bytes, uint64_t outer_bytes) {
  ClusterConfig sized = base;
  sized.num_machines = machines;
  sized.fabric.num_hosts = machines;
  return ParamsFromCluster(sized, inner_bytes, outer_bytes);
}

uint32_t MachinesForDeadline(const ClusterConfig& base, uint64_t inner_bytes,
                             uint64_t outer_bytes, double deadline_seconds,
                             uint32_t min_machines, uint32_t max_machines) {
  for (uint32_t m = min_machines; m <= max_machines; ++m) {
    ModelParams p = ParamsAtMachineCount(base, m, inner_bytes, outer_bytes);
    if (p.net_max <= 0) continue;  // Congested out of existence.
    if (Estimate(p).TotalSeconds() <= deadline_seconds) return m;
  }
  return 0;
}

uint32_t NetworkBoundCrossover(const ClusterConfig& base, uint32_t min_machines,
                               uint32_t max_machines) {
  for (uint32_t m = min_machines; m <= max_machines; ++m) {
    ModelParams p = ParamsAtMachineCount(base, m, 1, 1);
    if (p.net_max <= 0) return m;  // Congestion alone caps the cluster here.
    if (IsNetworkBound(p)) return m;
  }
  return 0;
}

double ScaleOutEfficiency(const ClusterConfig& base, uint64_t inner_bytes,
                          uint64_t outer_bytes, uint32_t from, uint32_t to) {
  const double t_from =
      Estimate(ParamsAtMachineCount(base, from, inner_bytes, outer_bytes))
          .TotalSeconds();
  const double t_to =
      Estimate(ParamsAtMachineCount(base, to, inner_bytes, outer_bytes))
          .TotalSeconds();
  const double speedup = t_from / t_to;
  return speedup / (static_cast<double>(to) / from);
}

uint32_t DiminishingReturnsPoint(const ClusterConfig& base, uint64_t inner_bytes,
                                 uint64_t outer_bytes, double min_gain,
                                 uint32_t max_machines) {
  double prev =
      Estimate(ParamsAtMachineCount(base, 2, inner_bytes, outer_bytes)).TotalSeconds();
  for (uint32_t m = 3; m <= max_machines; ++m) {
    ModelParams p = ParamsAtMachineCount(base, m, inner_bytes, outer_bytes);
    if (p.net_max <= 0) return m - 1;
    const double t = Estimate(p).TotalSeconds();
    if ((prev - t) / prev < min_gain) return m - 1;
    prev = t;
  }
  return max_machines;
}

}  // namespace rdmajoin
