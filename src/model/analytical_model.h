#ifndef RDMAJOIN_MODEL_ANALYTICAL_MODEL_H_
#define RDMAJOIN_MODEL_ANALYTICAL_MODEL_H_

#include "model/parameters.h"

namespace rdmajoin {

/// Closed-form performance model of the distributed radix hash join
/// (Section 5 of the paper). All speeds are global MB/s, all times seconds.

/// Eq. 1: share of the per-host network bandwidth available to each
/// partitioning thread.
double PsNetwork(const ModelParams& p);

/// Eq. 2: true if remote tuples are produced faster than the network can
/// transmit them (the system is network-bound in the network pass).
bool IsNetworkBound(const ModelParams& p);

/// Eq. 4: observed partitioning speed of one thread in a network-bound
/// system (harmonic combination of compute and transmit speeds).
double PsThreadNetworkBound(const ModelParams& p);

/// Eq. 3 / Eq. 5: global partitioning speed of the network pass.
double Ps1(const ModelParams& p);

/// Eq. 6: global partitioning speed of a local pass.
double Ps2(const ModelParams& p);

/// Eq. 7: time to run all p partitioning passes over |R| + |S|.
double PartitioningSeconds(const ModelParams& p);

/// Eq. 8 + Eq. 9: global build speed and build time.
double BuildSpeed(const ModelParams& p);
double BuildSeconds(const ModelParams& p);

/// Eq. 10 + Eq. 11: global probe speed and probe time.
double ProbeSpeed(const ModelParams& p);
double ProbeSeconds(const ModelParams& p);

/// Histogram phase estimate (scan of both relations by all cores).
double HistogramSeconds(const ModelParams& p);

/// Breakdown of the whole join as the figures report it.
struct ModelEstimate {
  double histogram_seconds = 0;
  double network_partition_seconds = 0;
  double local_partition_seconds = 0;
  double build_probe_seconds = 0;
  bool network_bound = false;
  double TotalSeconds() const {
    return histogram_seconds + network_partition_seconds + local_partition_seconds +
           build_probe_seconds;
  }
};
ModelEstimate Estimate(const ModelParams& p);

/// Eq. 12: the number of partitioning threads per machine that exactly
/// saturates the network (maximum CPU and network utilization). Fractional;
/// round up for a configuration choice.
double OptimalPartitioningThreads(const ModelParams& p);

/// Eq. 13: the largest machine count for which RDMA buffers still fill
/// completely during the network pass, given `np1` first-pass partitions and
/// buffers of `rdma_buffer_mb` MB.
double MaxMachinesForFullBuffers(const ModelParams& p, uint32_t np1,
                                 double rdma_buffer_mb);

/// Eq. 14: true if every core can be assigned at least one partition.
bool SatisfiesCoreAssignment(const ModelParams& p, uint32_t np1);

}  // namespace rdmajoin

#endif  // RDMAJOIN_MODEL_ANALYTICAL_MODEL_H_
