#include "model/analytical_model.h"

#include <algorithm>

#include "util/units.h"

namespace rdmajoin {

Status ModelParams::Validate() const {
  if (num_machines == 0 || cores_per_machine == 0 || partitioning_threads == 0) {
    return Status::InvalidArgument("machine/core counts must be positive");
  }
  if (partitioning_threads > cores_per_machine) {
    return Status::InvalidArgument("more partitioning threads than cores");
  }
  if (ps_part <= 0 || net_max <= 0 || hb_thread <= 0 || hp_thread <= 0 ||
      hist_thread <= 0) {
    return Status::InvalidArgument("model speeds must be positive");
  }
  if (num_passes == 0) return Status::InvalidArgument("need at least one pass");
  return Status::OK();
}

ModelParams ParamsFromCluster(const ClusterConfig& cluster, uint64_t inner_bytes,
                              uint64_t outer_bytes, uint32_t num_passes) {
  ModelParams p;
  p.inner_mb = static_cast<double>(inner_bytes) / kMB;
  p.outer_mb = static_cast<double>(outer_bytes) / kMB;
  p.num_machines = cluster.num_machines;
  p.cores_per_machine = cluster.cores_per_machine;
  p.partitioning_threads = cluster.PartitioningThreads();
  p.ps_part = cluster.costs.partition_bytes_per_sec / kMB;
  p.net_max = (cluster.transport == TransportKind::kTcp
                   ? cluster.tcp.bytes_per_sec
                   : cluster.fabric.EffectiveEgress()) /
              kMB;
  p.hb_thread = cluster.costs.build_bytes_per_sec / kMB;
  p.hp_thread = cluster.costs.probe_bytes_per_sec / kMB;
  p.hist_thread = cluster.costs.histogram_bytes_per_sec / kMB;
  p.num_passes = num_passes;
  return p;
}

double PsNetwork(const ModelParams& p) {
  // Eq. 1: the outgoing bandwidth is shared by the partitioning threads.
  return p.net_max / p.partitioning_threads;
}

bool IsNetworkBound(const ModelParams& p) {
  if (p.num_machines <= 1) return false;
  // Eq. 2: remote tuples ((NM-1)/NM of the input) are produced faster than
  // each thread's share of the network can carry them.
  const double remote_fraction =
      static_cast<double>(p.num_machines - 1) / p.num_machines;
  return remote_fraction * p.ps_part > PsNetwork(p);
}

double PsThreadNetworkBound(const ModelParams& p) {
  // Eq. 4: 1/NM of the tuples are written locally at psPart, the remaining
  // (NM-1)/NM must drain through the thread's network share.
  const double nm = p.num_machines;
  const double ps_net = PsNetwork(p);
  return nm * p.ps_part * ps_net / ((nm - 1) * p.ps_part + ps_net);
}

double Ps1(const ModelParams& p) {
  if (p.num_machines <= 1) {
    // Degenerate single-machine case: every partition is local and all
    // partitioning threads run at full speed.
    return static_cast<double>(p.partitioning_threads) * p.ps_part;
  }
  const double threads =
      static_cast<double>(p.num_machines) * p.partitioning_threads;
  if (!IsNetworkBound(p)) {
    return threads * p.ps_part;  // Eq. 3
  }
  return threads * PsThreadNetworkBound(p);  // Eq. 5
}

double Ps2(const ModelParams& p) {
  // Eq. 6: local passes use every core at full partitioning speed.
  return static_cast<double>(p.num_machines) * p.cores_per_machine * p.ps_part;
}

double PartitioningSeconds(const ModelParams& p) {
  // Eq. 7.
  const double data = p.inner_mb + p.outer_mb;
  return data * (1.0 / Ps1(p) + static_cast<double>(p.num_passes - 1) / Ps2(p));
}

double BuildSpeed(const ModelParams& p) {
  // Eq. 8.
  return static_cast<double>(p.num_machines) * p.cores_per_machine * p.hb_thread;
}

double BuildSeconds(const ModelParams& p) { return p.inner_mb / BuildSpeed(p); }

double ProbeSpeed(const ModelParams& p) {
  // Eq. 10.
  return static_cast<double>(p.num_machines) * p.cores_per_machine * p.hp_thread;
}

double ProbeSeconds(const ModelParams& p) { return p.outer_mb / ProbeSpeed(p); }

double HistogramSeconds(const ModelParams& p) {
  const double speed =
      static_cast<double>(p.num_machines) * p.cores_per_machine * p.hist_thread;
  return (p.inner_mb + p.outer_mb) / speed;
}

ModelEstimate Estimate(const ModelParams& p) {
  ModelEstimate e;
  e.network_bound = IsNetworkBound(p);
  e.histogram_seconds = HistogramSeconds(p);
  const double data = p.inner_mb + p.outer_mb;
  e.network_partition_seconds = data / Ps1(p);
  e.local_partition_seconds = data * static_cast<double>(p.num_passes - 1) / Ps2(p);
  e.build_probe_seconds = BuildSeconds(p) + ProbeSeconds(p);
  return e;
}

double OptimalPartitioningThreads(const ModelParams& p) {
  if (p.num_machines <= 1) return p.cores_per_machine;
  // Eq. 12: (NC/M - 1) = NM/(NM-1) * netmax/psPart.
  const double nm = p.num_machines;
  return nm / (nm - 1.0) * p.net_max / p.ps_part;
}

double MaxMachinesForFullBuffers(const ModelParams& p, uint32_t np1,
                                 double rdma_buffer_mb) {
  // Eq. 13: NM <= |R| / (NP1 * threads * S_buffer).
  return p.inner_mb /
         (static_cast<double>(np1) * p.partitioning_threads * rdma_buffer_mb);
}

bool SatisfiesCoreAssignment(const ModelParams& p, uint32_t np1) {
  // Eq. 14: NC/M * NM <= NP1.
  return static_cast<uint64_t>(p.cores_per_machine) * p.num_machines <= np1;
}

}  // namespace rdmajoin
