#ifndef RDMAJOIN_MODEL_PLANNER_H_
#define RDMAJOIN_MODEL_PLANNER_H_

#include <cstdint>

#include "cluster/cluster.h"
#include "model/analytical_model.h"

namespace rdmajoin {

/// Deployment-planning queries on top of the Section 5 model: the questions
/// an operator of a rack-scale appliance asks ("how many machines do I need
/// for this SLA?", "when does adding machines stop paying?") answered in
/// closed form. `base` provides the hardware parameters; the machine count
/// is varied, reapplying the fabric's congestion term per Eq. 15.

/// Model parameters for `base`'s hardware at `machines` machines.
ModelParams ParamsAtMachineCount(const ClusterConfig& base, uint32_t machines,
                                 uint64_t inner_bytes, uint64_t outer_bytes);

/// Smallest machine count in [min_machines, max_machines] whose estimated
/// total time meets `deadline_seconds`; 0 if none does.
uint32_t MachinesForDeadline(const ClusterConfig& base, uint64_t inner_bytes,
                             uint64_t outer_bytes, double deadline_seconds,
                             uint32_t min_machines = 2, uint32_t max_machines = 64);

/// First machine count in [min_machines, max_machines] at which the network
/// pass becomes network-bound (Eq. 2); 0 if it stays CPU-bound throughout.
uint32_t NetworkBoundCrossover(const ClusterConfig& base, uint32_t min_machines = 2,
                               uint32_t max_machines = 64);

/// Parallel efficiency of scaling from `from` to `to` machines:
/// speedup / (to/from). 1.0 is perfect scaling.
double ScaleOutEfficiency(const ClusterConfig& base, uint64_t inner_bytes,
                          uint64_t outer_bytes, uint32_t from, uint32_t to);

/// Machine count past which adding one more machine improves the estimated
/// total by less than `min_gain` (relative); capped at max_machines.
uint32_t DiminishingReturnsPoint(const ClusterConfig& base, uint64_t inner_bytes,
                                 uint64_t outer_bytes, double min_gain = 0.05,
                                 uint32_t max_machines = 64);

}  // namespace rdmajoin

#endif  // RDMAJOIN_MODEL_PLANNER_H_
