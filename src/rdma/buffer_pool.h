#ifndef RDMAJOIN_RDMA_BUFFER_POOL_H_
#define RDMAJOIN_RDMA_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "rdma/verbs.h"
#include "util/status.h"
#include "util/statusor.h"

namespace rdmajoin {

/// A fixed-size buffer backed by a registered memory region.
struct RegisteredBuffer {
  std::unique_ptr<uint8_t[]> data;
  MemoryRegion mr;
  /// Bytes currently filled by the user (not managed by the pool).
  uint64_t used = 0;

  uint8_t* bytes() { return data.get(); }
  uint64_t capacity() const { return mr.length; }
};

/// A pool of preallocated, preregistered RDMA buffers.
///
/// Section 3.2.1: "To reduce the overall registration cost ... an algorithm
/// should reuse existing RDMA-enabled buffers as often as possible and avoid
/// registering new memory regions on the fly." The pool implements exactly
/// that policy; the kRegisterOnDemand policy exists to quantify what it saves
/// (bench/abl_registration).
///
/// The pool enforces the acquire/release contract: a buffer must be released
/// exactly once per acquisition, and every buffer must be back in the pool
/// when it is destroyed. Breaches are reported to the device's
/// ProtocolValidator (double-release, buffer-leak) and, with or without a
/// validator, never corrupt the free list.
class RegisteredBufferPool {
 public:
  enum class Policy {
    /// Buffers are registered once and recycled (the paper's design).
    kPooled,
    /// Every acquisition registers a fresh region and every release
    /// deregisters it (the anti-pattern the paper warns against).
    kRegisterOnDemand,
  };

  /// Buffers are `buffer_bytes` long and registered with `device`.
  RegisteredBufferPool(RdmaDevice* device, uint64_t buffer_bytes,
                       Policy policy = Policy::kPooled);
  RegisteredBufferPool(const RegisteredBufferPool&) = delete;
  RegisteredBufferPool& operator=(const RegisteredBufferPool&) = delete;
  ~RegisteredBufferPool();

  /// Preallocates and registers `count` buffers (pooled policy only).
  Status Preallocate(size_t count);

  /// Returns a registered buffer, growing the pool if it is empty.
  StatusOr<RegisteredBuffer*> Acquire();

  /// Returns `buf` to the pool (or deregisters it under kRegisterOnDemand).
  /// Releasing a buffer that is not outstanding is a protocol violation:
  /// the buffer is left untouched and FailedPrecondition is returned (OK in
  /// a validator's report mode, after recording the violation).
  Status Release(RegisteredBuffer* buf);

  uint64_t buffer_bytes() const { return buffer_bytes_; }
  Policy policy() const { return policy_; }

  /// Total buffers ever created (== registrations performed).
  uint64_t buffers_created() const { return buffers_created_; }
  /// Total Acquire calls.
  uint64_t acquisitions() const { return acquisitions_; }
  /// Acquisitions served without a new registration.
  uint64_t reuses() const { return acquisitions_ - buffers_created_; }
  size_t free_buffers() const { return free_.size(); }
  size_t outstanding() const { return outstanding_.size(); }

 private:
  StatusOr<RegisteredBuffer*> CreateBuffer();
  /// Pushes the current outstanding count into the device's occupancy gauge
  /// (no-op when metrics are disabled).
  void UpdateOccupancy();
  /// Reports a credit transition to the device's event sink (no-op without
  /// one attached).
  void NotifyCredit(bool acquired);

  RdmaDevice* device_;
  uint64_t buffer_bytes_;
  Policy policy_;
  std::vector<std::unique_ptr<RegisteredBuffer>> all_;
  std::vector<RegisteredBuffer*> free_;
  /// Buffers currently acquired and not yet released.
  std::unordered_set<RegisteredBuffer*> outstanding_;
  uint64_t buffers_created_ = 0;
  uint64_t acquisitions_ = 0;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_RDMA_BUFFER_POOL_H_
