#include "rdma/verbs.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace rdmajoin {

namespace {

/// Counts a completion that was actually delivered to one of `dev`'s CQs (a
/// completion dropped on overflow is not counted), in the device metrics and
/// toward the device's event sink.
void CountCompletion(const RdmaDevice* dev, const WorkCompletion& wc) {
  if (const DeviceMetrics* m = dev->metrics()) {
    switch (wc.op) {
      case WorkCompletion::Op::kSend:
        m->send_completed->Increment();
        break;
      case WorkCompletion::Op::kRecv:
        m->recv_completed->Increment();
        break;
      case WorkCompletion::Op::kWrite:
        m->write_completed->Increment();
        break;
      case WorkCompletion::Op::kRead:
        m->read_completed->Increment();
        break;
    }
    if (!wc.success) m->failed_completions->Increment();
  }
  if (RdmaEventSink* sink = dev->event_sink()) {
    sink->OnWrCompleted(dev->id(), wc.op, wc.success);
  }
}

/// Counts a posted work request (counted even when validation later refuses
/// it, matching the `*_posted` metric semantics).
void CountPosted(const RdmaDevice* dev, WorkCompletion::Op op) {
  if (const DeviceMetrics* m = dev->metrics()) {
    switch (op) {
      case WorkCompletion::Op::kSend:
        m->send_posted->Increment();
        break;
      case WorkCompletion::Op::kRecv:
        m->recv_posted->Increment();
        break;
      case WorkCompletion::Op::kWrite:
        m->write_posted->Increment();
        break;
      case WorkCompletion::Op::kRead:
        m->read_posted->Increment();
        break;
    }
  }
  if (RdmaEventSink* sink = dev->event_sink()) {
    sink->OnWrPosted(dev->id(), op);
  }
}

/// Distinguishes a key that was deregistered (use-after-free of the region)
/// from one that never existed; both violate the same contract clause.
std::string DescribeKey(const RdmaDevice* device, ProtocolValidator* validator,
                        uint32_t key, const char* what) {
  std::string desc = std::string(what) + ": key " + std::to_string(key);
  if (validator != nullptr && validator->WasDeregistered(device->id(), key)) {
    desc += " was deregistered";
  } else {
    desc += " was never registered";
  }
  desc += " (device " + std::to_string(device->id()) + ")";
  return desc;
}

}  // namespace

size_t CompletionQueue::Poll(size_t max, std::vector<WorkCompletion>* out) {
  size_t n = 0;
  while (n < max && !entries_.empty()) {
    if (event_sink_ != nullptr) {
      event_sink_->OnCompletionPolled(sink_device_, entries_.front().op);
    }
    out->push_back(entries_.front());
    entries_.pop_front();
    ++n;
  }
  return n;
}

bool CompletionQueue::PollOne(WorkCompletion* out) {
  if (entries_.empty()) return false;
  if (event_sink_ != nullptr) {
    event_sink_->OnCompletionPolled(sink_device_, entries_.front().op);
  }
  *out = entries_.front();
  entries_.pop_front();
  return true;
}

bool CompletionQueue::Push(const WorkCompletion& wc, ProtocolValidator* validator) {
  if (capacity_ != 0 && entries_.size() >= capacity_) {
    ++overflow_drops_;
    if (validator != nullptr) {
      validator->Record(ProtocolViolation::kCqOverflow,
                        "completion queue full (capacity " +
                            std::to_string(capacity_) + "), wr_id " +
                            std::to_string(wc.wr_id) + " dropped");
    }
    return false;
  }
  entries_.push_back(wc);
  return true;
}

RdmaDevice::RdmaDevice(uint32_t device_id, MemorySpace* memory, const CostModel& costs,
                       double pin_scale)
    : device_id_(device_id), memory_(memory), costs_(costs), pin_scale_(pin_scale) {}

void RdmaDevice::EnableMetrics(MetricsRegistry* registry,
                               const std::string& prefix) {
  metrics_.send_posted = registry->GetCounter(prefix + ".send_posted");
  metrics_.recv_posted = registry->GetCounter(prefix + ".recv_posted");
  metrics_.write_posted = registry->GetCounter(prefix + ".write_posted");
  metrics_.read_posted = registry->GetCounter(prefix + ".read_posted");
  metrics_.send_completed = registry->GetCounter(prefix + ".send_completed");
  metrics_.recv_completed = registry->GetCounter(prefix + ".recv_completed");
  metrics_.write_completed = registry->GetCounter(prefix + ".write_completed");
  metrics_.read_completed = registry->GetCounter(prefix + ".read_completed");
  metrics_.failed_completions =
      registry->GetCounter(prefix + ".failed_completions");
  metrics_.regions_registered =
      registry->GetCounter(prefix + ".regions_registered");
  metrics_.bytes_registered = registry->GetCounter(prefix + ".bytes_registered");
  metrics_.live_regions = registry->GetGauge(prefix + ".live_regions");
  metrics_.pool_outstanding = registry->GetGauge(prefix + ".pool_outstanding");
  metrics_enabled_ = true;
}

RdmaDevice::~RdmaDevice() {
  // Regions leaked by the caller are unpinned so the memory space stays
  // consistent across tests, but each one is a protocol violation: the
  // contract requires deregistration before the device goes away. The leaks
  // are reported in ascending lkey order: validator messages feed reports
  // that must be byte-identical across runs and stdlib versions, so the
  // unordered map's iteration order must not leak into them.
  std::vector<uint32_t> leaked;
  leaked.reserve(by_lkey_.size());
  // lint: order-insensitive(keys are drained into a vector and sorted below)
  for (const auto& [lkey, mr] : by_lkey_) leaked.push_back(lkey);
  std::sort(leaked.begin(), leaked.end());
  for (const uint32_t lkey : leaked) {
    const MemoryRegion& mr = by_lkey_.at(lkey);
    if (validator_ != nullptr) {
      validator_->Record(ProtocolViolation::kRegionLeak,
                         "device " + std::to_string(device_id_) + ": lkey " +
                             std::to_string(lkey) + " (" +
                             std::to_string(mr.length) +
                             " bytes) still registered at teardown");
    }
    if (memory_ != nullptr) memory_->Unpin(PinBytes(mr.length));
  }
}

StatusOr<MemoryRegion> RdmaDevice::RegisterMemory(uint8_t* addr, uint64_t length) {
  if (addr == nullptr || length == 0) {
    return Status::InvalidArgument("cannot register an empty memory region");
  }
  if (memory_ != nullptr) {
    RDMAJOIN_RETURN_IF_ERROR(memory_->Pin(PinBytes(length)));
  }
  MemoryRegion mr;
  mr.lkey = next_key_++;
  mr.rkey = next_key_++;
  mr.addr = addr;
  mr.length = length;
  mr.device_id = device_id_;
  by_lkey_[mr.lkey] = mr;
  rkey_to_lkey_[mr.rkey] = mr.lkey;
  ++stats_.regions_registered;
  stats_.bytes_registered += length;
  stats_.registration_seconds += costs_.RegistrationSeconds(length);
  if (metrics_enabled_) {
    metrics_.regions_registered->Increment();
    metrics_.bytes_registered->Add(static_cast<double>(length));
    metrics_.live_regions->Set(static_cast<double>(by_lkey_.size()));
  }
  if (validator_ != nullptr) validator_->OnRegister(device_id_, mr.lkey, mr.rkey);
  return mr;
}

Status RdmaDevice::DeregisterMemory(const MemoryRegion& mr) {
  auto it = by_lkey_.find(mr.lkey);
  if (it == by_lkey_.end()) {
    Status error =
        Status::NotFound("memory region not registered with this device");
    if (validator_ == nullptr) return error;
    // Deregistering a dead (or foreign) region is itself a lifetime bug.
    validator_->Record(ProtocolViolation::kUseAfterDeregister,
                       DescribeKey(this, validator_, mr.lkey, "DeregisterMemory"));
    return validator_->strict() ? error : Status::OK();
  }
  if (memory_ != nullptr) memory_->Unpin(PinBytes(it->second.length));
  stats_.deregistration_seconds += costs_.DeregistrationSeconds(it->second.length);
  ++stats_.regions_deregistered;
  if (validator_ != nullptr) {
    validator_->OnDeregister(device_id_, it->second.lkey, it->second.rkey);
  }
  rkey_to_lkey_.erase(it->second.rkey);
  by_lkey_.erase(it);
  if (metrics_enabled_) {
    metrics_.live_regions->Set(static_cast<double>(by_lkey_.size()));
  }
  return Status::OK();
}

const MemoryRegion* RdmaDevice::FindByLkey(uint32_t lkey) const {
  auto it = by_lkey_.find(lkey);
  return it == by_lkey_.end() ? nullptr : &it->second;
}

const MemoryRegion* RdmaDevice::FindByRkey(uint32_t rkey) const {
  auto it = rkey_to_lkey_.find(rkey);
  if (it == rkey_to_lkey_.end()) return nullptr;
  return FindByLkey(it->second);
}

QueuePair::QueuePair(RdmaDevice* local, CompletionQueue* send_cq,
                     CompletionQueue* recv_cq)
    : local_(local), send_cq_(send_cq), recv_cq_(recv_cq) {
  assert(local != nullptr && send_cq != nullptr && recv_cq != nullptr);
}

Status QueuePair::Connect(QueuePair* a, QueuePair* b) {
  if (a == nullptr || b == nullptr) {
    return Status::InvalidArgument("null queue pair");
  }
  if (a->peer_ != nullptr || b->peer_ != nullptr) {
    return Status::FailedPrecondition("queue pair already connected");
  }
  if (a == b) return Status::InvalidArgument("cannot connect a queue pair to itself");
  a->peer_ = b;
  b->peer_ = a;
  return Status::OK();
}

Status QueuePair::CheckBounds(const MemoryRegion* mr, uint64_t offset, uint64_t len,
                              const char* what) {
  if (mr == nullptr) {
    return Status::InvalidArgument(std::string(what) + ": unknown memory key");
  }
  if (offset + len > mr->length || offset + len < offset) {
    return Status::OutOfRange(std::string(what) + ": access outside memory region");
  }
  return Status::OK();
}

Status QueuePair::FailWr(ProtocolViolation violation, const Status& error,
                         WorkCompletion::Op op, uint64_t wr_id,
                         CompletionQueue* cq) {
  ProtocolValidator* validator = local_->validator();
  if (validator == nullptr) return error;
  validator->Record(violation, error.message());
  if (validator->strict()) return error;
  // Report mode: the post "succeeds" and the violation surfaces as a failed
  // completion, the way a real HCA delivers protection errors.
  const WorkCompletion wc{op, wr_id, 0, 0, /*success=*/false};
  if (cq->Push(wc, validator)) CountCompletion(local_, wc);
  return Status::OK();
}

Status QueuePair::CheckReady(WorkCompletion::Op op, uint64_t wr_id,
                             CompletionQueue* cq, bool* refused) {
  if (state_ != State::kError) {
    *refused = false;
    return Status::OK();
  }
  *refused = true;
  return FailWr(ProtocolViolation::kQpNotReady,
                Status::FailedPrecondition(
                    "queue pair in error state (device " +
                    std::to_string(local_->id()) + "); Recover() it first"),
                op, wr_id, cq);
}

Status QueuePair::PostRecv(uint64_t wr_id, uint32_t lkey, uint64_t offset,
                           uint64_t max_len) {
  CountPosted(local_, WorkCompletion::Op::kRecv);
  bool refused = false;
  Status ready = CheckReady(WorkCompletion::Op::kRecv, wr_id, recv_cq_, &refused);
  if (refused) return ready;
  ProtocolValidator* validator = local_->validator();
  const MemoryRegion* mr = local_->FindByLkey(lkey);
  if (mr == nullptr) {
    Status error = Status::InvalidArgument(
        DescribeKey(local_, validator, lkey, "PostRecv"));
    return FailWr(ProtocolViolation::kUseAfterDeregister, error,
                  WorkCompletion::Op::kRecv, wr_id, recv_cq_);
  }
  Status bounds = CheckBounds(mr, offset, max_len, "PostRecv");
  if (!bounds.ok()) {
    return FailWr(ProtocolViolation::kOutOfBounds, bounds,
                  WorkCompletion::Op::kRecv, wr_id, recv_cq_);
  }
  recv_queue_.push_back(PostedRecv{wr_id, lkey, offset, max_len});
  ++local_->stats_.recvs_posted;
  return Status::OK();
}

Status QueuePair::PostSend(uint64_t wr_id, uint32_t lkey, uint64_t offset,
                           uint64_t len) {
  if (peer_ == nullptr) return Status::FailedPrecondition("queue pair not connected");
  CountPosted(local_, WorkCompletion::Op::kSend);
  bool refused = false;
  Status ready = CheckReady(WorkCompletion::Op::kSend, wr_id, send_cq_, &refused);
  if (refused) return ready;
  ProtocolValidator* validator = local_->validator();
  const MemoryRegion* src = local_->FindByLkey(lkey);
  if (src == nullptr) {
    Status error = Status::InvalidArgument(
        DescribeKey(local_, validator, lkey, "PostSend src"));
    return FailWr(ProtocolViolation::kUseAfterDeregister, error,
                  WorkCompletion::Op::kSend, wr_id, send_cq_);
  }
  Status bounds = CheckBounds(src, offset, len, "PostSend src");
  if (!bounds.ok()) {
    return FailWr(ProtocolViolation::kOutOfBounds, bounds,
                  WorkCompletion::Op::kSend, wr_id, send_cq_);
  }
  if (peer_->recv_queue_.empty()) {
    return FailWr(ProtocolViolation::kReceiverNotReady,
                  Status::ResourceExhausted("receiver not ready: no posted receive"),
                  WorkCompletion::Op::kSend, wr_id, send_cq_);
  }
  PostedRecv rx = peer_->recv_queue_.front();
  const MemoryRegion* dst = peer_->local_->FindByLkey(rx.lkey);
  if (dst == nullptr) {
    // The receive buffer's region was deregistered after the recv was
    // posted; the posted receive is consumed, as on real hardware.
    peer_->recv_queue_.pop_front();
    Status error = Status::InvalidArgument(
        DescribeKey(peer_->local_, validator, rx.lkey, "PostSend dst"));
    return FailWr(ProtocolViolation::kUseAfterDeregister, error,
                  WorkCompletion::Op::kSend, wr_id, send_cq_);
  }
  if (len > rx.max_len) {
    return FailWr(ProtocolViolation::kOutOfBounds,
                  Status::OutOfRange("message larger than posted receive buffer"),
                  WorkCompletion::Op::kSend, wr_id, send_cq_);
  }
  if (fail_next_sends_ > 0) {
    // Injected transport fault (src/fault/): the work request was valid, so
    // this is not a protocol violation. The peer's posted receive is not
    // consumed -- the message never arrived.
    --fail_next_sends_;
    if (fail_drop_) {
      // Lost in the fabric: no completion is ever delivered; the sender's
      // timeout path is the only way to learn about it.
      return Status::OK();
    }
    // Fatal error completion; the queue pair transitions to the error state
    // per verbs semantics and must be recovered before further posts.
    state_ = State::kError;
    const WorkCompletion wc{WorkCompletion::Op::kSend, wr_id, 0, 0,
                            /*success=*/false};
    if (send_cq_->Push(wc, local_->validator())) CountCompletion(local_, wc);
    return Status::OK();
  }
  peer_->recv_queue_.pop_front();
  std::memcpy(dst->addr + rx.offset, src->addr + offset, len);

  ++local_->stats_.messages_sent;
  local_->stats_.bytes_sent += len;
  const WorkCompletion send_wc{WorkCompletion::Op::kSend, wr_id, len, 0, true};
  if (send_cq_->Push(send_wc, validator)) {
    CountCompletion(local_, send_wc);
  }
  const WorkCompletion recv_wc{WorkCompletion::Op::kRecv, rx.wr_id, len, rx.lkey,
                               true};
  if (peer_->recv_cq_->Push(recv_wc, peer_->local_->validator())) {
    CountCompletion(peer_->local_, recv_wc);
  }
  return Status::OK();
}

Status QueuePair::PostWrite(uint64_t wr_id, uint32_t local_lkey, uint64_t local_offset,
                            uint32_t rkey, uint64_t remote_offset, uint64_t len) {
  if (peer_ == nullptr) return Status::FailedPrecondition("queue pair not connected");
  CountPosted(local_, WorkCompletion::Op::kWrite);
  bool refused = false;
  Status ready = CheckReady(WorkCompletion::Op::kWrite, wr_id, send_cq_, &refused);
  if (refused) return ready;
  ProtocolValidator* validator = local_->validator();
  const MemoryRegion* src = local_->FindByLkey(local_lkey);
  if (src == nullptr) {
    Status error = Status::InvalidArgument(
        DescribeKey(local_, validator, local_lkey, "PostWrite src"));
    return FailWr(ProtocolViolation::kUseAfterDeregister, error,
                  WorkCompletion::Op::kWrite, wr_id, send_cq_);
  }
  Status bounds = CheckBounds(src, local_offset, len, "PostWrite src");
  if (!bounds.ok()) {
    return FailWr(ProtocolViolation::kOutOfBounds, bounds,
                  WorkCompletion::Op::kWrite, wr_id, send_cq_);
  }
  const MemoryRegion* dst = peer_->local_->FindByRkey(rkey);
  if (dst == nullptr) {
    Status error = Status::InvalidArgument(
        DescribeKey(peer_->local_, validator, rkey, "PostWrite dst"));
    return FailWr(ProtocolViolation::kUseAfterDeregister, error,
                  WorkCompletion::Op::kWrite, wr_id, send_cq_);
  }
  bounds = CheckBounds(dst, remote_offset, len, "PostWrite dst");
  if (!bounds.ok()) {
    return FailWr(ProtocolViolation::kOutOfBounds, bounds,
                  WorkCompletion::Op::kWrite, wr_id, send_cq_);
  }
  std::memcpy(dst->addr + remote_offset, src->addr + local_offset, len);
  ++local_->stats_.writes_posted;
  local_->stats_.bytes_written += len;
  ++local_->stats_.messages_sent;
  local_->stats_.bytes_sent += len;
  const WorkCompletion wc{WorkCompletion::Op::kWrite, wr_id, len, 0, true};
  if (send_cq_->Push(wc, validator)) CountCompletion(local_, wc);
  return Status::OK();
}

Status QueuePair::PostRead(uint64_t wr_id, uint32_t local_lkey, uint64_t local_offset,
                           uint32_t rkey, uint64_t remote_offset, uint64_t len) {
  if (peer_ == nullptr) return Status::FailedPrecondition("queue pair not connected");
  CountPosted(local_, WorkCompletion::Op::kRead);
  bool refused = false;
  Status ready = CheckReady(WorkCompletion::Op::kRead, wr_id, send_cq_, &refused);
  if (refused) return ready;
  ProtocolValidator* validator = local_->validator();
  const MemoryRegion* dst = local_->FindByLkey(local_lkey);
  if (dst == nullptr) {
    Status error = Status::InvalidArgument(
        DescribeKey(local_, validator, local_lkey, "PostRead dst"));
    return FailWr(ProtocolViolation::kUseAfterDeregister, error,
                  WorkCompletion::Op::kRead, wr_id, send_cq_);
  }
  Status bounds = CheckBounds(dst, local_offset, len, "PostRead dst");
  if (!bounds.ok()) {
    return FailWr(ProtocolViolation::kOutOfBounds, bounds,
                  WorkCompletion::Op::kRead, wr_id, send_cq_);
  }
  const MemoryRegion* src = peer_->local_->FindByRkey(rkey);
  if (src == nullptr) {
    Status error = Status::InvalidArgument(
        DescribeKey(peer_->local_, validator, rkey, "PostRead src"));
    return FailWr(ProtocolViolation::kUseAfterDeregister, error,
                  WorkCompletion::Op::kRead, wr_id, send_cq_);
  }
  bounds = CheckBounds(src, remote_offset, len, "PostRead src");
  if (!bounds.ok()) {
    return FailWr(ProtocolViolation::kOutOfBounds, bounds,
                  WorkCompletion::Op::kRead, wr_id, send_cq_);
  }
  std::memcpy(dst->addr + local_offset, src->addr + remote_offset, len);
  const WorkCompletion wc{WorkCompletion::Op::kRead, wr_id, len, 0, true};
  if (send_cq_->Push(wc, validator)) CountCompletion(local_, wc);
  return Status::OK();
}

}  // namespace rdmajoin
