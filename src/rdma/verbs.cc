#include "rdma/verbs.h"

#include <cassert>
#include <cstring>

namespace rdmajoin {

size_t CompletionQueue::Poll(size_t max, std::vector<WorkCompletion>* out) {
  size_t n = 0;
  while (n < max && !entries_.empty()) {
    out->push_back(entries_.front());
    entries_.pop_front();
    ++n;
  }
  return n;
}

bool CompletionQueue::PollOne(WorkCompletion* out) {
  if (entries_.empty()) return false;
  *out = entries_.front();
  entries_.pop_front();
  return true;
}

RdmaDevice::RdmaDevice(uint32_t device_id, MemorySpace* memory, const CostModel& costs,
                       double pin_scale)
    : device_id_(device_id), memory_(memory), costs_(costs), pin_scale_(pin_scale) {}

RdmaDevice::~RdmaDevice() {
  // Regions leaked by the caller are unpinned so the memory space stays
  // consistent across tests.
  for (auto& [lkey, mr] : by_lkey_) {
    if (memory_ != nullptr) memory_->Unpin(PinBytes(mr.length));
  }
}

StatusOr<MemoryRegion> RdmaDevice::RegisterMemory(uint8_t* addr, uint64_t length) {
  if (addr == nullptr || length == 0) {
    return Status::InvalidArgument("cannot register an empty memory region");
  }
  if (memory_ != nullptr) {
    RDMAJOIN_RETURN_IF_ERROR(memory_->Pin(PinBytes(length)));
  }
  MemoryRegion mr;
  mr.lkey = next_key_++;
  mr.rkey = next_key_++;
  mr.addr = addr;
  mr.length = length;
  mr.device_id = device_id_;
  by_lkey_[mr.lkey] = mr;
  rkey_to_lkey_[mr.rkey] = mr.lkey;
  ++stats_.regions_registered;
  stats_.bytes_registered += length;
  stats_.registration_seconds += costs_.RegistrationSeconds(length);
  return mr;
}

Status RdmaDevice::DeregisterMemory(const MemoryRegion& mr) {
  auto it = by_lkey_.find(mr.lkey);
  if (it == by_lkey_.end()) {
    return Status::NotFound("memory region not registered with this device");
  }
  if (memory_ != nullptr) memory_->Unpin(PinBytes(it->second.length));
  stats_.deregistration_seconds += costs_.DeregistrationSeconds(it->second.length);
  ++stats_.regions_deregistered;
  rkey_to_lkey_.erase(it->second.rkey);
  by_lkey_.erase(it);
  return Status::OK();
}

const MemoryRegion* RdmaDevice::FindByLkey(uint32_t lkey) const {
  auto it = by_lkey_.find(lkey);
  return it == by_lkey_.end() ? nullptr : &it->second;
}

const MemoryRegion* RdmaDevice::FindByRkey(uint32_t rkey) const {
  auto it = rkey_to_lkey_.find(rkey);
  if (it == rkey_to_lkey_.end()) return nullptr;
  return FindByLkey(it->second);
}

QueuePair::QueuePair(RdmaDevice* local, CompletionQueue* send_cq,
                     CompletionQueue* recv_cq)
    : local_(local), send_cq_(send_cq), recv_cq_(recv_cq) {
  assert(local != nullptr && send_cq != nullptr && recv_cq != nullptr);
}

Status QueuePair::Connect(QueuePair* a, QueuePair* b) {
  if (a == nullptr || b == nullptr) {
    return Status::InvalidArgument("null queue pair");
  }
  if (a->peer_ != nullptr || b->peer_ != nullptr) {
    return Status::FailedPrecondition("queue pair already connected");
  }
  if (a == b) return Status::InvalidArgument("cannot connect a queue pair to itself");
  a->peer_ = b;
  b->peer_ = a;
  return Status::OK();
}

Status QueuePair::CheckBounds(const MemoryRegion* mr, uint64_t offset, uint64_t len,
                              const char* what) {
  if (mr == nullptr) {
    return Status::InvalidArgument(std::string(what) + ": unknown memory key");
  }
  if (offset + len > mr->length || offset + len < offset) {
    return Status::OutOfRange(std::string(what) + ": access outside memory region");
  }
  return Status::OK();
}

Status QueuePair::PostRecv(uint64_t wr_id, uint32_t lkey, uint64_t offset,
                           uint64_t max_len) {
  const MemoryRegion* mr = local_->FindByLkey(lkey);
  RDMAJOIN_RETURN_IF_ERROR(CheckBounds(mr, offset, max_len, "PostRecv"));
  recv_queue_.push_back(PostedRecv{wr_id, lkey, offset, max_len});
  ++local_->stats_.recvs_posted;
  return Status::OK();
}

Status QueuePair::PostSend(uint64_t wr_id, uint32_t lkey, uint64_t offset,
                           uint64_t len) {
  if (peer_ == nullptr) return Status::FailedPrecondition("queue pair not connected");
  const MemoryRegion* src = local_->FindByLkey(lkey);
  RDMAJOIN_RETURN_IF_ERROR(CheckBounds(src, offset, len, "PostSend src"));
  if (peer_->recv_queue_.empty()) {
    return Status::ResourceExhausted("receiver not ready: no posted receive");
  }
  PostedRecv rx = peer_->recv_queue_.front();
  const MemoryRegion* dst = peer_->local_->FindByLkey(rx.lkey);
  RDMAJOIN_RETURN_IF_ERROR(CheckBounds(dst, rx.offset, rx.max_len, "PostSend dst"));
  if (len > rx.max_len) {
    return Status::OutOfRange("message larger than posted receive buffer");
  }
  peer_->recv_queue_.pop_front();
  std::memcpy(dst->addr + rx.offset, src->addr + offset, len);

  ++local_->stats_.messages_sent;
  local_->stats_.bytes_sent += len;
  send_cq_->entries_.push_back(
      WorkCompletion{WorkCompletion::Op::kSend, wr_id, len, 0, true});
  peer_->recv_cq_->entries_.push_back(
      WorkCompletion{WorkCompletion::Op::kRecv, rx.wr_id, len, rx.lkey, true});
  return Status::OK();
}

Status QueuePair::PostWrite(uint64_t wr_id, uint32_t local_lkey, uint64_t local_offset,
                            uint32_t rkey, uint64_t remote_offset, uint64_t len) {
  if (peer_ == nullptr) return Status::FailedPrecondition("queue pair not connected");
  const MemoryRegion* src = local_->FindByLkey(local_lkey);
  RDMAJOIN_RETURN_IF_ERROR(CheckBounds(src, local_offset, len, "PostWrite src"));
  const MemoryRegion* dst = peer_->local_->FindByRkey(rkey);
  RDMAJOIN_RETURN_IF_ERROR(CheckBounds(dst, remote_offset, len, "PostWrite dst"));
  std::memcpy(dst->addr + remote_offset, src->addr + local_offset, len);
  ++local_->stats_.writes_posted;
  local_->stats_.bytes_written += len;
  ++local_->stats_.messages_sent;
  local_->stats_.bytes_sent += len;
  send_cq_->entries_.push_back(
      WorkCompletion{WorkCompletion::Op::kWrite, wr_id, len, 0, true});
  return Status::OK();
}

Status QueuePair::PostRead(uint64_t wr_id, uint32_t local_lkey, uint64_t local_offset,
                           uint32_t rkey, uint64_t remote_offset, uint64_t len) {
  if (peer_ == nullptr) return Status::FailedPrecondition("queue pair not connected");
  const MemoryRegion* dst = local_->FindByLkey(local_lkey);
  RDMAJOIN_RETURN_IF_ERROR(CheckBounds(dst, local_offset, len, "PostRead dst"));
  const MemoryRegion* src = peer_->local_->FindByRkey(rkey);
  RDMAJOIN_RETURN_IF_ERROR(CheckBounds(src, remote_offset, len, "PostRead src"));
  std::memcpy(dst->addr + local_offset, src->addr + remote_offset, len);
  send_cq_->entries_.push_back(
      WorkCompletion{WorkCompletion::Op::kRead, wr_id, len, 0, true});
  return Status::OK();
}

}  // namespace rdmajoin
