#ifndef RDMAJOIN_RDMA_VERBS_H_
#define RDMAJOIN_RDMA_VERBS_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cost_model.h"
#include "cluster/memory_space.h"
#include "rdma/validator.h"
#include "util/status.h"
#include "util/statusor.h"

namespace rdmajoin {

class Counter;
class Gauge;
class MetricsRegistry;

/// A verbs-style RDMA interface executing against simulated machine memory.
///
/// The join algorithm is written against this API exactly as it would be
/// against libibverbs: memory must be registered into memory regions before
/// the "HCA" may touch it, work requests are posted to queue pairs, and
/// completions are polled from completion queues. Data transfer is performed
/// eagerly (the simulation separates the data path from virtual time), but
/// all protection checks (lkey/rkey validation, bounds, posted receives) are
/// enforced, and registration costs are accounted so buffer-management
/// policies can be compared (Section 3.2.1).
///
/// Protocol violations are additionally reported to an optional
/// ProtocolValidator (rdma/validator.h) attached to the device, which either
/// fails the offending call (strict mode) or suppresses the operation and
/// records it for tools/rdmajoin_check (report mode).

class RdmaDevice;
class QueuePair;

/// A registered (pinned) region of a machine's memory.
struct MemoryRegion {
  uint32_t lkey = 0;
  uint32_t rkey = 0;
  uint8_t* addr = nullptr;
  uint64_t length = 0;
  uint32_t device_id = 0;
};

/// Completion of a posted work request.
struct WorkCompletion {
  enum class Op { kSend, kRecv, kWrite, kRead };
  Op op = Op::kSend;
  uint64_t wr_id = 0;
  /// Bytes transferred.
  uint64_t byte_len = 0;
  /// For kRecv: the region the message landed in.
  uint32_t recv_lkey = 0;
  bool success = true;
};

/// Observer of execution-layer RDMA events: work requests posted, completions
/// delivered, completions polled, buffer-pool credits acquired/released. The
/// execution layer is eager and owns no virtual clock, so events are ordinal
/// (counts, not timestamps) -- the replay layer in src/timing owns time.
/// Implemented by the span recorder (timing/span_trace.h); attached with
/// RdmaDevice::set_event_sink (Post* and buffer-pool events) and
/// CompletionQueue::set_event_sink (poll events).
class RdmaEventSink {
 public:
  virtual ~RdmaEventSink() = default;
  /// A work request of `op` was posted on `device` (counted even when the
  /// post is refused or fails validation, mirroring the posted metrics).
  virtual void OnWrPosted(uint32_t device, WorkCompletion::Op op) = 0;
  /// A completion was delivered to a CQ owned by `device` (overflow-dropped
  /// completions are not reported).
  virtual void OnWrCompleted(uint32_t device, WorkCompletion::Op op,
                             bool success) = 0;
  /// A completion was handed to the application by Poll/PollOne.
  virtual void OnCompletionPolled(uint32_t device, WorkCompletion::Op op) = 0;
  /// A registered buffer was acquired from (`acquired`) or released back to
  /// (`!acquired`) a pool drawing on `device`.
  virtual void OnBufferCredit(uint32_t device, bool acquired) = 0;
};

/// FIFO of work completions. Shared by any number of queue pairs. A capacity
/// of 0 (the default) means unbounded; with a capacity set, completions
/// arriving at a full queue are dropped and reported as cq-overflow to the
/// device's validator -- the simulated equivalent of an IBV_EVENT_CQ_ERR
/// overrun.
class CompletionQueue {
 public:
  explicit CompletionQueue(size_t capacity = 0) : capacity_(capacity) {}

  /// Polls up to `max` completions into `out`; returns the number polled.
  size_t Poll(size_t max, std::vector<WorkCompletion>* out);
  /// Returns true and sets `*out` if a completion was available.
  bool PollOne(WorkCompletion* out);
  size_t depth() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity) { capacity_ = capacity; }
  /// Completions dropped because the queue was full.
  uint64_t overflow_drops() const { return overflow_drops_; }

  /// Attaches an event sink notified on every Poll/PollOne; `device_id`
  /// labels the events (the CQ's owning device). Pass nullptr to detach.
  void set_event_sink(RdmaEventSink* sink, uint32_t device_id) {
    event_sink_ = sink;
    sink_device_ = device_id;
  }

 private:
  friend class QueuePair;
  friend class RdmaDevice;

  /// Appends `wc` unless the queue is full; reports overflow to `validator`
  /// (may be null) and returns false when the completion was dropped.
  bool Push(const WorkCompletion& wc, ProtocolValidator* validator);

  size_t capacity_;
  uint64_t overflow_drops_ = 0;
  RdmaEventSink* event_sink_ = nullptr;
  uint32_t sink_device_ = 0;
  std::deque<WorkCompletion> entries_;
};

/// Metric handles for one device, created by RdmaDevice::EnableMetrics. The
/// pointed-to metrics live in the attached MetricsRegistry; the pointers are
/// shared with QueuePair (work-request accounting) and RegisteredBufferPool
/// (occupancy high-water via the gauge's max()).
struct DeviceMetrics {
  Counter* send_posted;
  Counter* recv_posted;
  Counter* write_posted;
  Counter* read_posted;
  Counter* send_completed;
  Counter* recv_completed;
  Counter* write_completed;
  Counter* read_completed;
  /// Completions delivered with success == false (report-mode violations).
  Counter* failed_completions;
  Counter* regions_registered;
  Counter* bytes_registered;
  Gauge* live_regions;
  /// Buffers currently acquired from pools drawing on this device.
  Gauge* pool_outstanding;
};

/// Cumulative statistics of one device, including the virtual time spent on
/// memory registration (the hidden cost the buffer pool amortizes).
struct DeviceStats {
  uint64_t regions_registered = 0;
  uint64_t regions_deregistered = 0;
  uint64_t bytes_registered = 0;
  double registration_seconds = 0.0;
  double deregistration_seconds = 0.0;
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t writes_posted = 0;
  uint64_t bytes_written = 0;
  uint64_t recvs_posted = 0;
};

/// One RDMA-capable NIC, bound to one simulated machine's memory space.
class RdmaDevice {
 public:
  /// `memory` may be null, in which case pinning is not enforced (useful in
  /// unit tests); `costs` drives the registration cost accounting.
  /// `pin_scale` converts actual (in-simulation) region sizes into the
  /// full-scale bytes tracked by the memory space (the executor's scale_up).
  RdmaDevice(uint32_t device_id, MemorySpace* memory, const CostModel& costs,
             double pin_scale = 1.0);
  RdmaDevice(const RdmaDevice&) = delete;
  RdmaDevice& operator=(const RdmaDevice&) = delete;
  ~RdmaDevice();

  uint32_t id() const { return device_id_; }

  /// Attaches a protocol validator observing this device, its queue pairs
  /// and any buffer pools drawing from it. Must outlive the device.
  void set_validator(ProtocolValidator* validator) { validator_ = validator; }
  ProtocolValidator* validator() const { return validator_; }

  /// Attaches an execution-event observer (posted work requests, delivered
  /// completions, buffer-pool credits). Must outlive the device; pass
  /// nullptr to detach.
  void set_event_sink(RdmaEventSink* sink) { event_sink_ = sink; }
  RdmaEventSink* event_sink() const { return event_sink_; }

  /// Attaches observability instrumentation reporting into `registry` under
  /// `<prefix>.` (e.g. `rdma.dev0.send_posted`, `.bytes_registered`,
  /// `.pool_outstanding`). `registry` must outlive the device.
  void EnableMetrics(MetricsRegistry* registry, const std::string& prefix);
  /// Metric handles, or nullptr when metrics are disabled.
  const DeviceMetrics* metrics() const {
    return metrics_enabled_ ? &metrics_ : nullptr;
  }

  /// Registers `[addr, addr+length)` for RDMA access. Pins the pages in the
  /// machine's memory space and charges the registration cost.
  StatusOr<MemoryRegion> RegisterMemory(uint8_t* addr, uint64_t length);

  /// Deregisters a region, unpinning its pages.
  Status DeregisterMemory(const MemoryRegion& mr);

  /// Looks up a region by local key; nullptr if unknown.
  const MemoryRegion* FindByLkey(uint32_t lkey) const;
  /// Looks up a region by remote key; nullptr if unknown.
  const MemoryRegion* FindByRkey(uint32_t rkey) const;

  /// Regions currently registered (not yet deregistered).
  size_t live_regions() const { return by_lkey_.size(); }

  const DeviceStats& stats() const { return stats_; }
  DeviceStats* mutable_stats() { return &stats_; }

 private:
  friend class QueuePair;
  uint64_t PinBytes(uint64_t length) const {
    return static_cast<uint64_t>(static_cast<double>(length) * pin_scale_);
  }

  uint32_t device_id_;
  MemorySpace* memory_;
  CostModel costs_;
  double pin_scale_;
  ProtocolValidator* validator_ = nullptr;
  RdmaEventSink* event_sink_ = nullptr;
  uint32_t next_key_ = 1;
  std::unordered_map<uint32_t, MemoryRegion> by_lkey_;
  std::unordered_map<uint32_t, uint32_t> rkey_to_lkey_;
  DeviceStats stats_;
  DeviceMetrics metrics_{};
  bool metrics_enabled_ = false;
};

/// A reliable connection between two devices. Supports two-sided SEND/RECV
/// (channel semantics) and one-sided WRITE/READ (memory semantics).
///
/// Error delivery depends on the local device's validator: with none
/// attached (or in strict mode) a protocol violation fails the Post* call
/// with an error Status; in report mode the post returns OK, the transfer
/// is suppressed, and a failed WorkCompletion is delivered instead -- the
/// way a real HCA surfaces protection errors.
class QueuePair {
 public:
  /// Lifecycle per verbs semantics, collapsed to the two states the join
  /// exercises: kReady (RTS) accepts work requests; kError refuses every
  /// post (reported as qp-not-ready) until Recover() cycles the queue pair
  /// back (the simulated RESET -> INIT -> RTR -> RTS transition).
  enum class State : uint8_t { kReady, kError };

  /// Connects `local` to `remote`. `send_cq`/`recv_cq` receive this side's
  /// completions; the peer constructs its own QueuePair and the two are
  /// paired with Connect().
  QueuePair(RdmaDevice* local, CompletionQueue* send_cq, CompletionQueue* recv_cq);

  /// Pairs two queue pairs (one per side). Both must be unconnected.
  static Status Connect(QueuePair* a, QueuePair* b);

  /// Posts a receive buffer (`lkey` must identify a local region, and
  /// `offset + max_len` must lie within it). Incoming SENDs consume posted
  /// receives in FIFO order.
  Status PostRecv(uint64_t wr_id, uint32_t lkey, uint64_t offset, uint64_t max_len);

  /// Two-sided send of `[offset, offset+len)` of local region `lkey` into the
  /// peer's next posted receive buffer. Fails if the peer has no receive
  /// posted (receiver-not-ready) or the buffer is too small.
  Status PostSend(uint64_t wr_id, uint32_t lkey, uint64_t offset, uint64_t len);

  /// One-sided write into the peer region identified by `rkey`.
  Status PostWrite(uint64_t wr_id, uint32_t local_lkey, uint64_t local_offset,
                   uint32_t rkey, uint64_t remote_offset, uint64_t len);

  /// One-sided read from the peer region identified by `rkey`.
  Status PostRead(uint64_t wr_id, uint32_t local_lkey, uint64_t local_offset,
                  uint32_t rkey, uint64_t remote_offset, uint64_t len);

  bool connected() const { return peer_ != nullptr; }
  size_t posted_recvs() const { return recv_queue_.size(); }
  RdmaDevice* device() const { return local_; }

  State state() const { return state_; }
  /// Transitions to the error state; every subsequent post fails with
  /// qp-not-ready until Recover(). A completion error injected by
  /// InjectSendFaults transitions automatically, per verbs semantics.
  void SetError() { state_ = State::kError; }
  /// Returns the queue pair to the ready state. Pending receives survive
  /// (the simulation does not flush them; the transport's recovery path
  /// reposts what it consumed).
  void Recover() { state_ = State::kReady; }

  /// Fault injection (src/fault/): the next `count` PostSend calls that pass
  /// validation fail. With `drop` false each delivers an error work
  /// completion and moves the queue pair to the error state; with `drop`
  /// true the message is silently lost -- no completion is ever delivered
  /// and the state is unchanged (the sender must time out).
  void InjectSendFaults(uint32_t count, bool drop) {
    fail_next_sends_ = count;
    fail_drop_ = drop;
  }
  uint32_t pending_send_faults() const { return fail_next_sends_; }

 private:
  struct PostedRecv {
    uint64_t wr_id;
    uint32_t lkey;
    uint64_t offset;
    uint64_t max_len;
  };

  /// Validates that [offset, offset+len) lies inside the region.
  static Status CheckBounds(const MemoryRegion* mr, uint64_t offset, uint64_t len,
                            const char* what);

  /// Routes a violated work request through the local validator: no
  /// validator or strict -> returns `error`; report mode -> records the
  /// violation, delivers a failed completion of `op` to `cq`, returns OK.
  Status FailWr(ProtocolViolation violation, const Status& error,
                WorkCompletion::Op op, uint64_t wr_id, CompletionQueue* cq);

  /// Refuses the post when the queue pair is in the error state (reported
  /// as qp-not-ready through FailWr); OK otherwise.
  Status CheckReady(WorkCompletion::Op op, uint64_t wr_id, CompletionQueue* cq,
                    bool* refused);

  RdmaDevice* local_;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  QueuePair* peer_ = nullptr;
  State state_ = State::kReady;
  uint32_t fail_next_sends_ = 0;
  bool fail_drop_ = false;
  std::deque<PostedRecv> recv_queue_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_RDMA_VERBS_H_
