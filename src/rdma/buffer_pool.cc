#include "rdma/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "util/metrics.h"

namespace rdmajoin {

RegisteredBufferPool::RegisteredBufferPool(RdmaDevice* device, uint64_t buffer_bytes,
                                           Policy policy)
    : device_(device), buffer_bytes_(buffer_bytes), policy_(policy) {
  assert(device != nullptr);
  assert(buffer_bytes > 0);
}

RegisteredBufferPool::~RegisteredBufferPool() {
  ProtocolValidator* validator = device_->validator();
  if (validator != nullptr && !outstanding_.empty()) {
    validator->Record(ProtocolViolation::kBufferLeak,
                      std::to_string(outstanding_.size()) +
                          " buffer(s) still outstanding at pool teardown (device " +
                          std::to_string(device_->id()) + ")");
  }
  for (auto& buf : all_) {
    if (buf->data != nullptr) {
      // Best-effort: deregistration failures are impossible for regions this
      // pool registered itself.
      // lint: discard-ok(destructor teardown of regions this pool registered)
      (void)device_->DeregisterMemory(buf->mr);
    }
  }
}

StatusOr<RegisteredBuffer*> RegisteredBufferPool::CreateBuffer() {
  auto buf = std::make_unique<RegisteredBuffer>();
  buf->data = std::make_unique<uint8_t[]>(buffer_bytes_);
  auto mr = device_->RegisterMemory(buf->data.get(), buffer_bytes_);
  if (!mr.ok()) return mr.status();
  buf->mr = *mr;
  ++buffers_created_;
  RegisteredBuffer* raw = buf.get();
  all_.push_back(std::move(buf));
  return raw;
}

Status RegisteredBufferPool::Preallocate(size_t count) {
  if (policy_ != Policy::kPooled) {
    return Status::FailedPrecondition(
        "Preallocate is only meaningful for the pooled policy");
  }
  for (size_t i = 0; i < count; ++i) {
    auto buf = CreateBuffer();
    if (!buf.ok()) return buf.status();
    free_.push_back(*buf);
  }
  return Status::OK();
}

StatusOr<RegisteredBuffer*> RegisteredBufferPool::Acquire() {
  ++acquisitions_;
  if (policy_ == Policy::kPooled && !free_.empty()) {
    RegisteredBuffer* buf = free_.back();
    free_.pop_back();
    buf->used = 0;
    outstanding_.insert(buf);
    UpdateOccupancy();
    NotifyCredit(/*acquired=*/true);
    return buf;
  }
  auto buf = CreateBuffer();
  if (!buf.ok()) {
    --acquisitions_;
    return buf.status();
  }
  (*buf)->used = 0;
  outstanding_.insert(*buf);
  UpdateOccupancy();
  NotifyCredit(/*acquired=*/true);
  return *buf;
}

void RegisteredBufferPool::NotifyCredit(bool acquired) {
  if (RdmaEventSink* sink = device_->event_sink()) {
    sink->OnBufferCredit(device_->id(), acquired);
  }
}

void RegisteredBufferPool::UpdateOccupancy() {
  // The gauge's max() is the occupancy high-water mark across every pool
  // drawing on the device.
  if (const DeviceMetrics* m = device_->metrics()) {
    m->pool_outstanding->Set(static_cast<double>(outstanding_.size()));
  }
}

Status RegisteredBufferPool::Release(RegisteredBuffer* buf) {
  if (buf == nullptr) {
    return Status::InvalidArgument("Release of a null buffer");
  }
  if (outstanding_.erase(buf) == 0) {
    // Double release (or a pointer this pool never handed out). Pushing it
    // onto the free list anyway would hand the same buffer to two owners,
    // so the release is refused in every mode.
    Status error = Status::FailedPrecondition(
        "buffer released while not outstanding (double release?)");
    ProtocolValidator* validator = device_->validator();
    if (validator == nullptr) return error;
    validator->Record(ProtocolViolation::kDoubleRelease, error.message());
    return validator->strict() ? error : Status::OK();
  }
  buf->used = 0;
  UpdateOccupancy();
  NotifyCredit(/*acquired=*/false);
  if (policy_ == Policy::kPooled) {
    free_.push_back(buf);
    return Status::OK();
  }
  // Register-on-demand: tear the buffer down entirely.
  // lint: discard-ok(pool registered this region itself; failure impossible)
  (void)device_->DeregisterMemory(buf->mr);
  auto it = std::find_if(all_.begin(), all_.end(),
                         [buf](const auto& p) { return p.get() == buf; });
  assert(it != all_.end());
  all_.erase(it);
  return Status::OK();
}

}  // namespace rdmajoin
