#include "rdma/buffer_pool.h"

#include <algorithm>
#include <cassert>

namespace rdmajoin {

RegisteredBufferPool::RegisteredBufferPool(RdmaDevice* device, uint64_t buffer_bytes,
                                           Policy policy)
    : device_(device), buffer_bytes_(buffer_bytes), policy_(policy) {
  assert(device != nullptr);
  assert(buffer_bytes > 0);
}

RegisteredBufferPool::~RegisteredBufferPool() {
  for (auto& buf : all_) {
    if (buf->data != nullptr) {
      // Best-effort: deregistration failures are impossible for regions this
      // pool registered itself.
      (void)device_->DeregisterMemory(buf->mr);
    }
  }
}

StatusOr<RegisteredBuffer*> RegisteredBufferPool::CreateBuffer() {
  auto buf = std::make_unique<RegisteredBuffer>();
  buf->data = std::make_unique<uint8_t[]>(buffer_bytes_);
  auto mr = device_->RegisterMemory(buf->data.get(), buffer_bytes_);
  if (!mr.ok()) return mr.status();
  buf->mr = *mr;
  ++buffers_created_;
  RegisteredBuffer* raw = buf.get();
  all_.push_back(std::move(buf));
  return raw;
}

Status RegisteredBufferPool::Preallocate(size_t count) {
  if (policy_ != Policy::kPooled) {
    return Status::FailedPrecondition(
        "Preallocate is only meaningful for the pooled policy");
  }
  for (size_t i = 0; i < count; ++i) {
    auto buf = CreateBuffer();
    if (!buf.ok()) return buf.status();
    free_.push_back(*buf);
  }
  return Status::OK();
}

StatusOr<RegisteredBuffer*> RegisteredBufferPool::Acquire() {
  ++acquisitions_;
  if (policy_ == Policy::kPooled && !free_.empty()) {
    RegisteredBuffer* buf = free_.back();
    free_.pop_back();
    buf->used = 0;
    return buf;
  }
  auto buf = CreateBuffer();
  if (!buf.ok()) {
    --acquisitions_;
    return buf.status();
  }
  (*buf)->used = 0;
  return *buf;
}

void RegisteredBufferPool::Release(RegisteredBuffer* buf) {
  assert(buf != nullptr);
  buf->used = 0;
  if (policy_ == Policy::kPooled) {
    free_.push_back(buf);
    return;
  }
  // Register-on-demand: tear the buffer down entirely.
  (void)device_->DeregisterMemory(buf->mr);
  auto it = std::find_if(all_.begin(), all_.end(),
                         [buf](const auto& p) { return p.get() == buf; });
  assert(it != all_.end());
  all_.erase(it);
}

}  // namespace rdmajoin
