#include "rdma/validator.h"

#include <cstdio>

namespace rdmajoin {

std::string_view ProtocolViolationName(ProtocolViolation v) {
  switch (v) {
    case ProtocolViolation::kUseAfterDeregister:
      return "use-after-deregister";
    case ProtocolViolation::kOutOfBounds:
      return "out-of-bounds";
    case ProtocolViolation::kReceiverNotReady:
      return "receiver-not-ready";
    case ProtocolViolation::kDoubleRelease:
      return "double-release";
    case ProtocolViolation::kBufferLeak:
      return "buffer-leak";
    case ProtocolViolation::kRegionLeak:
      return "region-leak";
    case ProtocolViolation::kCqOverflow:
      return "cq-overflow";
    case ProtocolViolation::kQpNotReady:
      return "qp-not-ready";
  }
  return "unknown";
}

uint64_t ProtocolReport::total() const {
  uint64_t sum = 0;
  // lint: order-insensitive(sum over a fixed-size array; name collision only)
  for (uint64_t c : counts) sum += c;
  return sum;
}

std::string ProtocolReport::ToString() const {
  std::string out = "verbs protocol report: " + std::to_string(total()) +
                    " violation(s)\n";
  for (size_t i = 0; i < kNumProtocolViolations; ++i) {
    const auto v = static_cast<ProtocolViolation>(i);
    char line[80];
    std::snprintf(line, sizeof(line), "  %-22s %llu\n",
                  std::string(ProtocolViolationName(v)).c_str(),
                  static_cast<unsigned long long>(counts[i]));
    out += line;
  }
  if (!samples.empty()) {
    out += "first occurrences:\n";
    for (const std::string& s : samples) {
      out += "  " + s + "\n";
    }
    if (dropped_samples > 0) {
      out += "  ... and " + std::to_string(dropped_samples) + " more\n";
    }
  }
  return out;
}

void ProtocolValidator::Record(ProtocolViolation v, std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  ++report_.counts[static_cast<size_t>(v)];
  if (report_.samples.size() < kMaxSamples) {
    report_.samples.push_back(std::string(ProtocolViolationName(v)) + ": " +
                              std::move(detail));
  } else {
    ++report_.dropped_samples;
  }
}

Status ProtocolValidator::Filter(ProtocolViolation v, const Status& error) {
  Record(v, error.message());
  return strict() ? error : Status::OK();
}

void ProtocolValidator::OnRegister(uint32_t device_id, uint32_t lkey,
                                   uint32_t rkey) {
  std::lock_guard<std::mutex> lock(mu_);
  // A recycled key is live again; forget that it was ever dead.
  dead_keys_.erase(KeyId(device_id, lkey));
  dead_keys_.erase(KeyId(device_id, rkey));
}

void ProtocolValidator::OnDeregister(uint32_t device_id, uint32_t lkey,
                                     uint32_t rkey) {
  std::lock_guard<std::mutex> lock(mu_);
  dead_keys_.insert(KeyId(device_id, lkey));
  dead_keys_.insert(KeyId(device_id, rkey));
}

bool ProtocolValidator::WasDeregistered(uint32_t device_id, uint32_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_keys_.count(KeyId(device_id, key)) > 0;
}

uint64_t ProtocolValidator::count(ProtocolViolation v) const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_.counts[static_cast<size_t>(v)];
}

uint64_t ProtocolValidator::total_violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_.total();
}

ProtocolReport ProtocolValidator::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_;
}

void ProtocolValidator::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  report_ = ProtocolReport{};
  dead_keys_.clear();
}

}  // namespace rdmajoin
