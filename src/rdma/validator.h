#ifndef RDMAJOIN_RDMA_VALIDATOR_H_
#define RDMAJOIN_RDMA_VALIDATOR_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "util/status.h"

namespace rdmajoin {

/// The verbs protocol contract the join must respect (Section 3.2.1): memory
/// is registered before the HCA touches it, work requests stay inside their
/// regions, receives are posted before sends arrive, pooled buffers are
/// released exactly once, completion queues are drained before they overrun,
/// and every region is deregistered before its device goes away. The
/// ProtocolValidator turns each breach of that contract into a typed,
/// countable violation instead of silent corruption.
enum class ProtocolViolation : uint8_t {
  /// A work request (or deregistration) referenced an lkey/rkey that is not
  /// live on the device -- either deregistered earlier or never registered.
  kUseAfterDeregister = 0,
  /// A work request addressed bytes outside its memory region.
  kOutOfBounds,
  /// A SEND arrived at a queue pair with no posted receive (RNR).
  kReceiverNotReady,
  /// A pooled buffer was released while not outstanding (double release or
  /// release of a foreign pointer).
  kDoubleRelease,
  /// Buffers still outstanding when their pool was destroyed.
  kBufferLeak,
  /// Memory regions still registered when their device was destroyed.
  kRegionLeak,
  /// A completion was dropped because the completion queue was full.
  kCqOverflow,
  /// A work request was posted to a queue pair in the error state (after a
  /// fatal completion error, before Recover()).
  kQpNotReady,
};

inline constexpr size_t kNumProtocolViolations = 8;

/// Stable kebab-case name, e.g. "use-after-deregister".
std::string_view ProtocolViolationName(ProtocolViolation v);

/// Aggregated findings of one validation run.
struct ProtocolReport {
  std::array<uint64_t, kNumProtocolViolations> counts{};
  /// First occurrences, capped; each line is "<violation>: <detail>".
  std::vector<std::string> samples;
  uint64_t dropped_samples = 0;

  uint64_t total() const;
  /// Human-readable multi-line summary (one row per violation class).
  std::string ToString() const;
};

/// Collects protocol violations reported by RdmaDevice, QueuePair,
/// CompletionQueue and RegisteredBufferPool. Attach one validator to a
/// device (RdmaDevice::set_validator) -- or to a whole run through
/// JoinConfig::validator -- and every component that touches that device
/// reports into it.
///
/// Modes:
///  - kReport: violations are recorded and the offending operation is
///    suppressed; posts complete "successfully" with a failed work
///    completion, mirroring how a real HCA surfaces protection errors.
///    Use this to replay a whole join and collect the full report
///    (tools/rdmajoin_check).
///  - kStrict: violations are recorded and the offending call returns the
///    underlying error Status immediately, so tests and CI fail at the
///    first breach. Teardown-time violations (leaks) are always
///    record-only, since destructors cannot fail.
///
/// The validator is internally synchronized; one instance may observe
/// devices driven from multiple threads.
class ProtocolValidator {
 public:
  enum class Mode { kReport, kStrict };

  explicit ProtocolValidator(Mode mode = Mode::kReport) : mode_(mode) {}

  Mode mode() const { return mode_; }
  bool strict() const { return mode_ == Mode::kStrict; }

  /// Records one occurrence of `v`. `detail` should identify the offending
  /// key/buffer/queue, e.g. "PostSend src: lkey 5 deregistered".
  void Record(ProtocolViolation v, std::string detail);

  /// Records `v` and decides how the call site proceeds: returns `error`
  /// in strict mode and OK in report mode. Call sites must suppress the
  /// operation themselves when OK is returned.
  Status Filter(ProtocolViolation v, const Status& error);

  /// Region lifetime tracking, fed by RdmaDevice, so the validator can tell
  /// a deregistered key apart from one that never existed.
  void OnRegister(uint32_t device_id, uint32_t lkey, uint32_t rkey);
  void OnDeregister(uint32_t device_id, uint32_t lkey, uint32_t rkey);
  /// True if `key` (an lkey or rkey) was registered on `device_id` and has
  /// since been deregistered.
  bool WasDeregistered(uint32_t device_id, uint32_t key) const;

  uint64_t count(ProtocolViolation v) const;
  uint64_t total_violations() const;
  /// Snapshot of the accumulated findings.
  ProtocolReport report() const;
  /// Clears all counts, samples, and key history.
  void Reset();

 private:
  static uint64_t KeyId(uint32_t device_id, uint32_t key) {
    return (static_cast<uint64_t>(device_id) << 32) | key;
  }

  static constexpr size_t kMaxSamples = 64;

  const Mode mode_;
  mutable std::mutex mu_;
  ProtocolReport report_;
  std::unordered_set<uint64_t> dead_keys_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_RDMA_VALIDATOR_H_
