#ifndef RDMAJOIN_BASELINE_RADIX_JOIN_H_
#define RDMAJOIN_BASELINE_RADIX_JOIN_H_

#include <cstdint>

#include "join/result_stats.h"
#include "util/statusor.h"
#include "workload/relation.h"

namespace rdmajoin {

/// Parameters of the single-machine parallel radix join (the extended
/// Balkesen et al. baseline of Section 6.1: multi-pass radix partitioning,
/// per-NUMA-region task queues, cache-sized build/probe).
struct BaselineConfig {
  /// Radix bits of the first partitioning pass.
  uint32_t bits_pass1 = 10;
  /// Radix bits of the second pass; 0 derives them from the cache target.
  uint32_t bits_pass2 = 0;
  /// Target size of the final cache-resident partitions, in bytes.
  uint64_t cache_partition_bytes = 32 * 1024;
  /// Collect matching rid pairs.
  bool materialize_results = false;
};

/// Result of a baseline run, including partitioning statistics used by
/// tests and by the micro benchmarks.
struct BaselineResult {
  JoinResultStats stats;
  uint32_t passes_executed = 0;
  uint64_t final_partitions = 0;
  uint64_t max_final_partition_bytes = 0;
};

/// The single-machine radix hash join: partitions R and S with up to two
/// radix passes until partitions meet the cache target, then builds and
/// probes per-partition hash tables. Serves as the correctness
/// cross-reference for the distributed join and as the "single" data point
/// of Figure 5a (whose timing uses the QPI cluster preset).
StatusOr<BaselineResult> RadixJoin(const Relation& inner, const Relation& outer,
                                   const BaselineConfig& config = BaselineConfig());

/// A trivial hash-map join used as ground truth in tests.
JoinResultStats ReferenceHashJoin(const Relation& inner, const Relation& outer,
                                  bool materialize = false);

}  // namespace rdmajoin

#endif  // RDMAJOIN_BASELINE_RADIX_JOIN_H_
