#include "baseline/numa_scheduler.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <queue>

namespace rdmajoin {

NumaScheduleResult ScheduleNumaTasks(const std::vector<NumaTask>& tasks,
                                     uint32_t regions, uint32_t workers_per_region,
                                     double remote_penalty, bool numa_aware) {
  assert(regions > 0 && workers_per_region > 0 && remote_penalty >= 1.0);
  NumaScheduleResult result;
  if (tasks.empty()) return result;

  // Region queues, longest tasks first within each region (LPT order).
  std::vector<std::deque<NumaTask>> queues(regions);
  {
    std::vector<NumaTask> sorted = tasks;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const NumaTask& a, const NumaTask& b) {
                       return a.cost_seconds > b.cost_seconds;
                     });
    for (const NumaTask& t : sorted) {
      assert(t.region < regions);
      // The non-NUMA-aware baseline funnels everything through queue 0.
      queues[numa_aware ? t.region : 0].push_back(t);
    }
  }

  // Workers become idle in virtual-time order.
  struct Worker {
    double free_at;
    uint32_t region;
    uint32_t id;
    bool operator>(const Worker& other) const {
      if (free_at != other.free_at) return free_at > other.free_at;
      return id > other.id;
    }
  };
  std::priority_queue<Worker, std::vector<Worker>, std::greater<Worker>> workers;
  for (uint32_t r = 0; r < regions; ++r) {
    for (uint32_t w = 0; w < workers_per_region; ++w) {
      workers.push(Worker{0.0, r, r * workers_per_region + w});
    }
  }

  size_t remaining = tasks.size();
  while (remaining > 0) {
    Worker worker = workers.top();
    workers.pop();
    // Local queue first; otherwise steal from the fullest queue.
    uint32_t source = numa_aware ? worker.region : 0;
    if (queues[source].empty()) {
      size_t best = 0;
      for (uint32_t r = 0; r < regions; ++r) {
        if (queues[r].size() > best) {
          best = queues[r].size();
          source = r;
        }
      }
      if (queues[source].empty()) {
        // Nothing left anywhere; this worker is done (can happen when other
        // workers grabbed the tail). Do not requeue it.
        continue;
      }
    }
    const NumaTask task = queues[source].front();
    queues[source].pop_front();
    --remaining;
    const bool local = task.region == worker.region;
    const double cost = local ? task.cost_seconds : task.cost_seconds * remote_penalty;
    if (local) {
      ++result.local_tasks;
    } else {
      ++result.remote_tasks;
    }
    worker.free_at += cost;
    result.makespan = std::max(result.makespan, worker.free_at);
    workers.push(worker);
  }
  return result;
}

}  // namespace rdmajoin
