#ifndef RDMAJOIN_BASELINE_NUMA_SCHEDULER_H_
#define RDMAJOIN_BASELINE_NUMA_SCHEDULER_H_

#include <cstdint>
#include <vector>

namespace rdmajoin {

/// A build/probe task pinned to the NUMA region holding its data.
struct NumaTask {
  uint32_t region = 0;
  double cost_seconds = 0;
};

/// Outcome of simulating one task-queue policy.
struct NumaScheduleResult {
  /// Time the last worker finishes.
  double makespan = 0;
  /// Tasks executed by a worker of the task's own region.
  uint64_t local_tasks = 0;
  /// Tasks stolen across regions (which pay the remote-access penalty).
  uint64_t remote_tasks = 0;
};

/// Simulates the NUMA-aware task queues the paper adds to the baseline
/// (Section 6.1, following Lang et al. [21]): one queue per NUMA region,
/// fed with the region's tasks; each worker drains its local queue first
/// and only when that is empty steals from the fullest remote queue, paying
/// `remote_penalty` (>= 1) on the stolen task's cost (the data crosses QPI).
///
/// With `numa_aware == false` every worker draws from one shared queue and
/// a task is "local" only by accident (1/regions of the time), modeling the
/// unmodified algorithm of [4].
NumaScheduleResult ScheduleNumaTasks(const std::vector<NumaTask>& tasks,
                                     uint32_t regions, uint32_t workers_per_region,
                                     double remote_penalty = 1.5,
                                     bool numa_aware = true);

}  // namespace rdmajoin

#endif  // RDMAJOIN_BASELINE_NUMA_SCHEDULER_H_
