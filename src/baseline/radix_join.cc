#include "baseline/radix_join.h"

#include <algorithm>
#include <unordered_map>

#include "join/hash_table.h"
#include "join/local_partition.h"

namespace rdmajoin {

StatusOr<BaselineResult> RadixJoin(const Relation& inner, const Relation& outer,
                                   const BaselineConfig& config) {
  if (inner.tuple_bytes() != outer.tuple_bytes()) {
    return Status::InvalidArgument("relations must share one tuple width");
  }
  if (config.bits_pass1 == 0 || config.bits_pass1 > 20) {
    return Status::InvalidArgument("bits_pass1 must be in [1, 20]");
  }
  BaselineResult result;

  // Pass 1.
  std::vector<Relation> r1 = RadixScatter(inner, 0, config.bits_pass1);
  std::vector<Relation> s1 = RadixScatter(outer, 0, config.bits_pass1);
  result.passes_executed = 1;

  // Pass 2 (optional): derive bits from the largest pass-1 partition of R.
  uint32_t bits2 = config.bits_pass2;
  if (bits2 == 0) {
    uint64_t max_r = 0;
    for (const Relation& r : r1) max_r = std::max(max_r, r.size_bytes());
    bits2 = BitsForTarget(max_r, config.cache_partition_bytes);
  }
  std::vector<std::pair<Relation, Relation>> final_parts;
  if (bits2 > 0) {
    ++result.passes_executed;
    for (size_t p = 0; p < r1.size(); ++p) {
      auto r_sub = RadixScatter(r1[p], config.bits_pass1, bits2);
      r1[p].Deallocate();
      auto s_sub = RadixScatter(s1[p], config.bits_pass1, bits2);
      s1[p].Deallocate();
      for (size_t q = 0; q < r_sub.size(); ++q) {
        if (r_sub[q].empty() && s_sub[q].empty()) continue;
        final_parts.emplace_back(std::move(r_sub[q]), std::move(s_sub[q]));
      }
    }
  } else {
    for (size_t p = 0; p < r1.size(); ++p) {
      if (r1[p].empty() && s1[p].empty()) continue;
      final_parts.emplace_back(std::move(r1[p]), std::move(s1[p]));
    }
  }

  // Build & probe. (Tasks are drained from a single queue; with one
  // simulation core the order is partition order.)
  result.final_partitions = final_parts.size();
  for (const auto& [r, s] : final_parts) {
    result.max_final_partition_bytes =
        std::max(result.max_final_partition_bytes, r.size_bytes());
    HashTable table(r);
    for (uint64_t i = 0; i < s.num_tuples(); ++i) {
      const uint64_t key = s.Key(i);
      const uint64_t outer_rid = s.Rid(i);
      table.Probe(key, [&](uint64_t inner_rid) {
        result.stats.Count(key, inner_rid);
        if (config.materialize_results) {
          result.stats.pairs.emplace_back(inner_rid, outer_rid);
        }
      });
    }
  }
  return result;
}

JoinResultStats ReferenceHashJoin(const Relation& inner, const Relation& outer,
                                  bool materialize) {
  JoinResultStats stats;
  std::unordered_multimap<uint64_t, uint64_t> table;
  table.reserve(inner.num_tuples());
  for (uint64_t i = 0; i < inner.num_tuples(); ++i) {
    table.emplace(inner.Key(i), inner.Rid(i));
  }
  for (uint64_t i = 0; i < outer.num_tuples(); ++i) {
    const uint64_t key = outer.Key(i);
    auto [lo, hi] = table.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      stats.Count(key, it->second);
      if (materialize) stats.pairs.emplace_back(it->second, outer.Rid(i));
    }
  }
  return stats;
}

}  // namespace rdmajoin
