#include "cluster/cluster.h"

namespace rdmajoin {

Status ClusterConfig::Validate() const {
  if (num_machines == 0) {
    return Status::InvalidArgument("cluster needs at least one machine");
  }
  if (cores_per_machine == 0) {
    return Status::InvalidArgument("machines need at least one core");
  }
  if (num_machines > 1 && reserve_receiver_core && cores_per_machine < 2) {
    return Status::InvalidArgument(
        "a multi-machine cluster with a reserved receiver core needs >= 2 cores");
  }
  if (fabric.num_hosts != num_machines) {
    return Status::InvalidArgument("fabric.num_hosts must equal num_machines");
  }
  RDMAJOIN_RETURN_IF_ERROR(costs.Validate());
  if (num_machines > 1) {
    RDMAJOIN_RETURN_IF_ERROR(fabric.Validate());
  }
  if (transport == TransportKind::kTcp) {
    if (tcp.bytes_per_sec <= 0 || tcp.sender_copy_bytes_per_sec <= 0 ||
        tcp.per_message_seconds < 0) {
      return Status::InvalidArgument("invalid TCP parameters");
    }
  }
  return Status::OK();
}

}  // namespace rdmajoin
