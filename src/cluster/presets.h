#ifndef RDMAJOIN_CLUSTER_PRESETS_H_
#define RDMAJOIN_CLUSTER_PRESETS_H_

#include <cstdint>

#include "cluster/cluster.h"

namespace rdmajoin {

/// Hardware presets mirroring Table 2 of the paper and the network
/// calibration of Eq. 15. All rates are full-scale (paper units); the
/// benches run the same presets the paper's figures use.

/// The ten-node QDR InfiniBand cluster: Intel Xeon E5-2609 (8 cores),
/// 128 GB RAM, measured QDR bandwidth 3.4 GB/s with a congestion penalty of
/// 110 MB/s per additional machine (Eq. 15).
ClusterConfig QdrCluster(uint32_t num_machines, uint32_t cores_per_machine = 8);

/// The four-node FDR InfiniBand cluster: Intel Xeon E5-4650 v2, 512 GB RAM,
/// measured FDR bandwidth 6.0 GB/s, no observable congestion at 4 nodes.
ClusterConfig FdrCluster(uint32_t num_machines, uint32_t cores_per_machine = 8);

/// The high-end 4-socket server of Figure 4, treated as a distributed system
/// (paper Section 7): sockets are "machines" connected by QPI with a
/// measured per-core inter-socket write bandwidth of 8.4 GB/s. Stores to
/// remote NUMA regions are one-sided (no receiver core is reserved, no
/// per-message cost) and the SIMD/AVX-enhanced partitioning passes run
/// slightly faster than on the cluster CPUs.
ClusterConfig QpiServer(uint32_t sockets = 4, uint32_t cores_per_socket = 8);

/// The FDR cluster running the TCP/IP implementation over IPoIB (Figure 5b):
/// 1.8 GB/s effective bandwidth, kernel crossings and intermediate copies.
ClusterConfig IpoibCluster(uint32_t num_machines, uint32_t cores_per_machine = 8);

}  // namespace rdmajoin

#endif  // RDMAJOIN_CLUSTER_PRESETS_H_
