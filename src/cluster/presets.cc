#include "cluster/presets.h"

#include "util/units.h"

namespace rdmajoin {

namespace {

/// Message size from which a single stream can saturate the port; with the
/// base latency on top, both networks reach full bandwidth at ~8 KiB
/// messages as in Figure 3. The fabric's message-rate limit derives from it.
constexpr double kFullBandwidthMessageBytes = 4.0 * 1024;

FabricConfig InfinibandFabric(uint32_t num_hosts, double bandwidth,
                              double congestion_per_host) {
  FabricConfig f;
  f.num_hosts = num_hosts;
  f.egress_bytes_per_sec = bandwidth;
  f.ingress_bytes_per_sec = bandwidth;
  f.message_rate_per_host = bandwidth / kFullBandwidthMessageBytes;
  f.congestion_bytes_per_sec_per_extra_host = congestion_per_host;
  f.base_latency_seconds = 2e-6;
  f.sharing = SharingPolicy::kEqualShare;
  return f;
}

}  // namespace

ClusterConfig QdrCluster(uint32_t num_machines, uint32_t cores_per_machine) {
  ClusterConfig c;
  c.name = "QDR cluster";
  c.num_machines = num_machines;
  c.cores_per_machine = cores_per_machine;
  // 128 GB (decimal, as data sizes are quoted): with OS and buffer overheads
  // this reproduces the paper's note that 2 x 4096 M tuples do not fit on
  // two machines (Section 6.4.1).
  c.memory_per_machine_bytes = 128000000000ull;
  c.reserve_receiver_core = true;
  c.transport = TransportKind::kRdmaChannel;
  c.interleave = InterleavePolicy::kInterleaved;
  c.fabric = InfinibandFabric(num_machines, 3.4e9, 110e6);
  c.costs = CostModel{};
  return c;
}

ClusterConfig FdrCluster(uint32_t num_machines, uint32_t cores_per_machine) {
  ClusterConfig c;
  c.name = "FDR cluster";
  c.num_machines = num_machines;
  c.cores_per_machine = cores_per_machine;
  c.memory_per_machine_bytes = 512000000000ull;
  c.reserve_receiver_core = true;
  c.transport = TransportKind::kRdmaChannel;
  c.interleave = InterleavePolicy::kInterleaved;
  c.fabric = InfinibandFabric(num_machines, 6.0e9, 0.0);
  c.costs = CostModel{};
  return c;
}

ClusterConfig QpiServer(uint32_t sockets, uint32_t cores_per_socket) {
  ClusterConfig c;
  c.name = "multi-core server (QPI)";
  c.num_machines = sockets;
  c.cores_per_machine = cores_per_socket;
  // 512 GB in the whole box; attribute an even share to each socket.
  c.memory_per_machine_bytes = 512000000000ull / sockets;
  // Remote stores are plain one-sided writes; every core partitions.
  c.reserve_receiver_core = false;
  c.transport = TransportKind::kRdmaMemory;
  c.interleave = InterleavePolicy::kInterleaved;
  FabricConfig f;
  f.num_hosts = sockets;
  f.egress_bytes_per_sec = 8.4e9;  // Measured per-core remote-write peak (Sec. 6.3).
  f.ingress_bytes_per_sec = 8.4e9;
  f.message_rate_per_host = 0.0;  // Loads/stores have no message-rate limit.
  f.congestion_bytes_per_sec_per_extra_host = 0.0;
  f.base_latency_seconds = 100e-9;
  f.sharing = SharingPolicy::kEqualShare;
  c.fabric = f;
  c.costs = CostModel{};
  // The baseline's first and second partitioning passes use SIMD/AVX
  // (Section 6.1), which the cluster implementation does not.
  c.costs.partition_bytes_per_sec = 1100e6;
  // QPI stores are plain memory writes: no HCA, no page pinning, no
  // registration cost.
  c.costs.reg_base_seconds = 0;
  c.costs.reg_per_page_seconds = 0;
  return c;
}

ClusterConfig IpoibCluster(uint32_t num_machines, uint32_t cores_per_machine) {
  ClusterConfig c = FdrCluster(num_machines, cores_per_machine);
  c.name = "FDR cluster (TCP over IPoIB)";
  c.transport = TransportKind::kTcp;
  c.tcp = TcpParams{};
  return c;
}

}  // namespace rdmajoin
