#ifndef RDMAJOIN_CLUSTER_MEMORY_SPACE_H_
#define RDMAJOIN_CLUSTER_MEMORY_SPACE_H_

#include <cstdint>

#include "util/status.h"

namespace rdmajoin {

/// Tracks the main-memory budget of one simulated machine in full-scale
/// (paper-sized) bytes. The join reserves capacity for relations, partition
/// buffers and RDMA regions through this accounting object, which lets the
/// benches reproduce capacity effects such as the paper's note that the
/// 2 x 4096 M-tuple workload does not fit on two 128 GB machines.
///
/// Pinning models RDMA memory registration: pinned pages cannot be swapped,
/// so Section 4.2.2 argues against registering large fractions of memory when
/// other queries run concurrently. The pin limit makes that trade-off
/// explicit.
class MemorySpace {
 public:
  /// `capacity_bytes` is the machine's physical memory (full-scale units).
  /// `pin_limit_bytes` caps registered (pinned) memory; defaults to the full
  /// capacity.
  explicit MemorySpace(uint64_t capacity_bytes, uint64_t pin_limit_bytes = 0)
      : capacity_(capacity_bytes),
        pin_limit_(pin_limit_bytes == 0 ? capacity_bytes : pin_limit_bytes) {}

  /// Reserves `bytes` of memory; fails with ResourceExhausted if the machine
  /// would exceed its capacity.
  Status Reserve(uint64_t bytes);

  /// Releases a previous reservation.
  void Release(uint64_t bytes);

  /// Marks `bytes` of already-reserved memory as pinned (registered).
  Status Pin(uint64_t bytes);

  /// Unpins previously pinned bytes.
  void Unpin(uint64_t bytes);

  uint64_t capacity() const { return capacity_; }
  uint64_t used() const { return used_; }
  uint64_t pinned() const { return pinned_; }
  uint64_t available() const { return capacity_ - used_; }
  uint64_t pin_limit() const { return pin_limit_; }

  /// High-water marks, for reporting.
  uint64_t peak_used() const { return peak_used_; }
  uint64_t peak_pinned() const { return peak_pinned_; }

 private:
  uint64_t capacity_;
  uint64_t pin_limit_;
  uint64_t used_ = 0;
  uint64_t pinned_ = 0;
  uint64_t peak_used_ = 0;
  uint64_t peak_pinned_ = 0;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_CLUSTER_MEMORY_SPACE_H_
