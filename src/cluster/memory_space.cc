#include "cluster/memory_space.h"

#include <algorithm>
#include <cassert>

namespace rdmajoin {

Status MemorySpace::Reserve(uint64_t bytes) {
  if (used_ + bytes > capacity_) {
    return Status::ResourceExhausted("machine memory exhausted: requested " +
                                     std::to_string(bytes) + " bytes, " +
                                     std::to_string(capacity_ - used_) + " available");
  }
  used_ += bytes;
  peak_used_ = std::max(peak_used_, used_);
  return Status::OK();
}

void MemorySpace::Release(uint64_t bytes) {
  assert(bytes <= used_);
  used_ -= bytes;
}

Status MemorySpace::Pin(uint64_t bytes) {
  if (pinned_ + bytes > pin_limit_) {
    return Status::ResourceExhausted("pin limit exceeded: requested " +
                                     std::to_string(bytes) + " bytes, " +
                                     std::to_string(pin_limit_ - pinned_) +
                                     " pinnable");
  }
  if (pinned_ + bytes > used_) {
    return Status::FailedPrecondition("cannot pin more memory than is reserved");
  }
  pinned_ += bytes;
  peak_pinned_ = std::max(peak_pinned_, pinned_);
  return Status::OK();
}

void MemorySpace::Unpin(uint64_t bytes) {
  assert(bytes <= pinned_);
  pinned_ -= bytes;
}

}  // namespace rdmajoin
