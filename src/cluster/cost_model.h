#ifndef RDMAJOIN_CLUSTER_COST_MODEL_H_
#define RDMAJOIN_CLUSTER_COST_MODEL_H_

#include <cstdint>

#include "util/status.h"

namespace rdmajoin {

/// Per-core processing rates and RDMA management costs that drive the
/// virtual-time simulation. Defaults are calibrated to the paper's
/// measurements (Eq. 15 and Section 6): a partitioning thread sustains
/// 955 MB/s; build/probe run on cache-resident partitions and are therefore
/// much faster per byte; the registration cost model follows Frey & Alonso
/// ("Minimizing the Hidden Cost of RDMA", ICDCS'09): a fixed setup cost plus
/// a per-page pinning cost.
struct CostModel {
  /// psPart: tuples read, partition computed, tuple written (bytes/sec).
  double partition_bytes_per_sec = 955e6;
  /// Histogram phase scan rate per thread (read + counter increment).
  double histogram_bytes_per_sec = 6000e6;
  /// hbThread: hash-table build rate over cache-sized partitions.
  double build_bytes_per_sec = 4000e6;
  /// hpThread: hash-table probe rate over cache-sized partitions.
  double probe_bytes_per_sec = 4000e6;
  /// Plain memcpy rate (receiver-side copies of two-sided transfers, TCP
  /// intermediate-buffer copies).
  double memcpy_bytes_per_sec = 6000e6;
  /// In-memory sort rate of one thread (used by the distributed sort-merge
  /// join, the Section 7 generalization). Well below the partitioning rate:
  /// sorting is comparison-bound where radix partitioning is copy-bound,
  /// which is why the paper builds on the radix hash join (Balkesen et al.
  /// [3] reach the same conclusion for current SIMD widths).
  double sort_bytes_per_sec = 500e6;
  /// Merge-join scan rate of one thread over two sorted runs.
  double merge_bytes_per_sec = 3000e6;

  /// Memory-region registration: fixed driver/HCA setup cost.
  double reg_base_seconds = 20e-6;
  /// Memory-region registration: per-page pinning cost.
  double reg_per_page_seconds = 0.25e-6;
  /// Page size used for the registration cost.
  uint64_t page_bytes = 4096;

  /// Virtual seconds to register (pin) a region of `bytes` bytes.
  double RegistrationSeconds(uint64_t bytes) const {
    const uint64_t pages = (bytes + page_bytes - 1) / page_bytes;
    return reg_base_seconds + static_cast<double>(pages) * reg_per_page_seconds;
  }
  /// De-registration is modeled at half the registration cost.
  double DeregistrationSeconds(uint64_t bytes) const {
    return RegistrationSeconds(bytes) * 0.5;
  }

  Status Validate() const {
    if (partition_bytes_per_sec <= 0 || histogram_bytes_per_sec <= 0 ||
        build_bytes_per_sec <= 0 || probe_bytes_per_sec <= 0 ||
        memcpy_bytes_per_sec <= 0) {
      return Status::InvalidArgument("cost model rates must be positive");
    }
    if (page_bytes == 0) return Status::InvalidArgument("page size must be positive");
    return Status::OK();
  }
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_CLUSTER_COST_MODEL_H_
