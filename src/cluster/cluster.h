#ifndef RDMAJOIN_CLUSTER_CLUSTER_H_
#define RDMAJOIN_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <string>

#include "cluster/cost_model.h"
#include "sim/fabric.h"
#include "transport/transport_kind.h"
#include "util/status.h"

namespace rdmajoin {

/// TCP/IPoIB cost parameters (used when transport == kTcp). Calibrated to the
/// paper's observations: IPoIB sustains only 1.8 GB/s on the FDR fabric, each
/// message pays a kernel crossing, and the payload is copied through
/// intermediate buffers by the sending CPU.
struct TcpParams {
  /// Point-to-point IPoIB bandwidth (the paper measured 1.8 GB/s).
  double bytes_per_sec = 1.8e9;
  /// Kernel crossing per message, paid by the sending and receiving CPU.
  double per_message_seconds = 25e-6;
  /// Rate of the sender-side copy through the socket buffer.
  double sender_copy_bytes_per_sec = 3.0e9;
  /// Effective rate at which one receiver core moves data through the TCP
  /// stack (interrupt handling + checksum + copy out of kernel buffers).
  /// This, not the link, bounds IPoIB throughput under all-to-all load.
  double receiver_bytes_per_sec = 1.5e9;
};

/// Hardware description of one simulated deployment (a row of Table 2 plus
/// the network parameters of Eq. 15).
struct ClusterConfig {
  std::string name = "cluster";
  uint32_t num_machines = 4;
  uint32_t cores_per_machine = 8;
  /// Full-scale memory per machine, bytes (Table 2: 128 GB QDR, 512 GB FDR).
  uint64_t memory_per_machine_bytes = 128ull << 30;
  /// If true, one core per machine is dedicated to draining incoming
  /// two-sided transfers (the paper's model: NC/M - 1 partitioning threads).
  bool reserve_receiver_core = true;

  TransportKind transport = TransportKind::kRdmaChannel;
  InterleavePolicy interleave = InterleavePolicy::kInterleaved;
  TcpParams tcp;

  FabricConfig fabric;
  CostModel costs;

  /// Threads that partition and send during the network pass.
  uint32_t PartitioningThreads() const {
    if (reserve_receiver_core && cores_per_machine > 1) return cores_per_machine - 1;
    return cores_per_machine;
  }
  uint32_t TotalCores() const { return num_machines * cores_per_machine; }

  Status Validate() const;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_CLUSTER_CLUSTER_H_
