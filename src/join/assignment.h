#ifndef RDMAJOIN_JOIN_ASSIGNMENT_H_
#define RDMAJOIN_JOIN_ASSIGNMENT_H_

#include <cstdint>
#include <vector>

namespace rdmajoin {

/// Static round-robin partition-to-machine assignment (Section 4.1):
/// partition p is processed by machine p mod num_machines.
std::vector<uint32_t> RoundRobinAssignment(uint32_t num_partitions,
                                           uint32_t num_machines);

/// Dynamic skew-aware assignment (Sections 4.1, 6.5): partitions are sorted
/// by element count in decreasing order and dealt round-robin so the largest
/// partitions land on different machines. `combined_counts[p]` is the global
/// tuple count of partition p over both relations.
std::vector<uint32_t> SkewAwareAssignment(const std::vector<uint64_t>& combined_counts,
                                          uint32_t num_machines);

/// Tuples assigned to each machine under `assignment`; used by tests and by
/// load-balance reporting.
std::vector<uint64_t> AssignedLoad(const std::vector<uint64_t>& combined_counts,
                                   const std::vector<uint32_t>& assignment,
                                   uint32_t num_machines);

}  // namespace rdmajoin

#endif  // RDMAJOIN_JOIN_ASSIGNMENT_H_
