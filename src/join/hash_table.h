#ifndef RDMAJOIN_JOIN_HASH_TABLE_H_
#define RDMAJOIN_JOIN_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "util/bit_ops.h"
#include "workload/relation.h"

namespace rdmajoin {

/// A bucket-chained hash table over one cache-sized partition of the inner
/// relation, in the style of the Balkesen et al. radix join: contiguous key
/// and rid arrays plus a chain array, so both build and probe are sequential
/// scans with one indirection per collision.
class HashTable {
 public:
  /// Builds the table over all tuples of `build_side`.
  explicit HashTable(const Relation& build_side);
  /// Builds over the tuple index range [begin, end) of `build_side`.
  HashTable(const Relation& build_side, uint64_t begin, uint64_t end);

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;
  HashTable(HashTable&&) = default;
  HashTable& operator=(HashTable&&) = default;

  /// Invokes `emit(rid)` for every build tuple whose key equals `key`.
  template <typename F>
  void Probe(uint64_t key, F&& emit) const {
    if (num_entries_ == 0) return;
    uint32_t slot = next_[num_entries_ + (HashKey(key) & bucket_mask_)];
    while (slot != kEmpty) {
      if (keys_[slot] == key) emit(rids_[slot]);
      slot = next_[slot];
    }
  }

  /// Number of matches for `key` (convenience for tests).
  uint64_t CountMatches(uint64_t key) const {
    uint64_t n = 0;
    Probe(key, [&n](uint64_t) { ++n; });
    return n;
  }

  uint64_t num_entries() const { return num_entries_; }
  uint64_t num_buckets() const { return bucket_mask_ + 1; }
  /// Approximate footprint; the partitioning stage targets tables that fit
  /// the private processor cache.
  uint64_t size_bytes() const {
    return keys_.size() * sizeof(uint64_t) + rids_.size() * sizeof(uint64_t) +
           next_.size() * sizeof(uint32_t);
  }

 private:
  static constexpr uint32_t kEmpty = UINT32_MAX;

  uint64_t num_entries_ = 0;
  uint64_t bucket_mask_ = 0;
  std::vector<uint64_t> keys_;
  std::vector<uint64_t> rids_;
  /// next_[0 .. n) are entry chains; next_[n .. n+buckets) are bucket heads.
  std::vector<uint32_t> next_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_JOIN_HASH_TABLE_H_
