#include "join/hash_table.h"

#include <cassert>

namespace rdmajoin {

HashTable::HashTable(const Relation& build_side)
    : HashTable(build_side, 0, build_side.num_tuples()) {}

HashTable::HashTable(const Relation& build_side, uint64_t begin, uint64_t end) {
  assert(begin <= end && end <= build_side.num_tuples());
  num_entries_ = end - begin;
  assert(num_entries_ < kEmpty);
  const uint64_t buckets = num_entries_ == 0 ? 1 : NextPowerOfTwo(num_entries_);
  bucket_mask_ = buckets - 1;
  keys_.resize(num_entries_);
  rids_.resize(num_entries_);
  next_.assign(num_entries_ + buckets, kEmpty);
  for (uint64_t i = 0; i < num_entries_; ++i) {
    const uint64_t key = build_side.Key(begin + i);
    keys_[i] = key;
    rids_[i] = build_side.Rid(begin + i);
    uint32_t* head = &next_[num_entries_ + (HashKey(key) & bucket_mask_)];
    next_[i] = *head;
    *head = static_cast<uint32_t>(i);
  }
}

}  // namespace rdmajoin
