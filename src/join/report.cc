#include "join/report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "timing/attribution.h"
#include "util/metrics.h"
#include "util/units.h"

namespace rdmajoin {

namespace {
void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}
}  // namespace

std::string VerifyAgainstTruth(const JoinResultStats& stats,
                               const GroundTruth& truth) {
  if (stats.matches != truth.expected_matches) {
    return "MISMATCH: " + std::to_string(stats.matches) + " matches, expected " +
           std::to_string(truth.expected_matches);
  }
  if (stats.key_sum != truth.expected_key_sum) {
    return "MISMATCH: key checksum differs";
  }
  if (stats.inner_rid_sum != truth.expected_inner_rid_sum) {
    return "MISMATCH: rid checksum differs";
  }
  return "verified (" + std::to_string(stats.matches) + " matches)";
}

std::string FormatRunReport(const ClusterConfig& cluster, const JoinRunResult& result,
                            const GroundTruth* truth,
                            const MetricsRegistry* metrics) {
  std::string out;
  const PhaseTimes& t = result.times;
  Appendf(&out, "=== join run on %s (%u machines x %u cores) ===\n",
          cluster.name.c_str(), cluster.num_machines, cluster.cores_per_machine);
  const double total = t.TotalSeconds();
  Appendf(&out, "  histogram          %8.3f s  (%4.1f%%)\n", t.histogram_seconds,
          100 * t.histogram_seconds / total);
  Appendf(&out, "  network partition  %8.3f s  (%4.1f%%)\n",
          t.network_partition_seconds, 100 * t.network_partition_seconds / total);
  Appendf(&out, "  local partition    %8.3f s  (%4.1f%%)\n",
          t.local_partition_seconds, 100 * t.local_partition_seconds / total);
  Appendf(&out, "  build-probe        %8.3f s  (%4.1f%%)\n", t.build_probe_seconds,
          100 * t.build_probe_seconds / total);
  Appendf(&out, "  total              %8.3f s\n", total);

  Appendf(&out, "network: %s in %llu messages",
          FormatBytes(static_cast<uint64_t>(result.net.virtual_wire_bytes)).c_str(),
          static_cast<unsigned long long>(result.net.messages_sent));
  if (result.replay.avg_network_rate_bytes_per_sec > 0) {
    Appendf(&out, ", avg %s",
            FormatRateMBps(result.replay.avg_network_rate_bytes_per_sec).c_str());
  }
  out.append("\n");
  if (!result.replay.receiver_busy_seconds.empty()) {
    double max_busy = 0;
    for (double b : result.replay.receiver_busy_seconds) {
      max_busy = std::max(max_busy, b);
    }
    if (t.network_partition_seconds > 0) {
      Appendf(&out, "receiver: busiest core %.1f%% utilized during network pass\n",
              100 * max_busy / t.network_partition_seconds);
    }
  }
  Appendf(&out, "buffer pool: %llu acquisitions, %llu registrations\n",
          static_cast<unsigned long long>(result.net.pool_acquisitions),
          static_cast<unsigned long long>(result.net.pool_buffers_created));
  out.append(FormatAttribution(result.replay.attribution));
  if (metrics != nullptr) {
    out.append("observability:\n");
    for (uint32_t m = 0; m < cluster.num_machines; ++m) {
      const std::string host = "fabric.host" + std::to_string(m);
      const Counter* egress = metrics->FindCounter(host + ".egress_bytes");
      const Counter* ingress = metrics->FindCounter(host + ".ingress_bytes");
      if (egress != nullptr && ingress != nullptr) {
        Appendf(&out, "  host%u: %s out, %s in", m,
                FormatBytes(static_cast<uint64_t>(egress->value())).c_str(),
                FormatBytes(static_cast<uint64_t>(ingress->value())).c_str());
      }
      const std::string dev = "rdma.dev" + std::to_string(m);
      const Counter* reg_bytes = metrics->FindCounter(dev + ".bytes_registered");
      const Gauge* pool_hw = metrics->FindGauge(dev + ".pool_outstanding");
      if (reg_bytes != nullptr) {
        Appendf(&out, ", %s registered",
                FormatBytes(static_cast<uint64_t>(reg_bytes->value())).c_str());
      }
      if (pool_hw != nullptr) {
        Appendf(&out, ", pool high-water %.0f buffers", pool_hw->max());
      }
      if ((egress != nullptr && ingress != nullptr) || reg_bytes != nullptr ||
          pool_hw != nullptr) {
        out.append("\n");
      }
    }
  }
  if (truth != nullptr) {
    Appendf(&out, "result: %s\n", VerifyAgainstTruth(result.stats, *truth).c_str());
  }
  return out;
}

}  // namespace rdmajoin
