#include "join/histogram.h"

#include "join/partitioner.h"

namespace rdmajoin {

RelationHistograms ComputeHistograms(const DistributedRelation& rel,
                                     uint32_t radix_bits) {
  RelationHistograms h;
  h.radix_bits = radix_bits;
  const uint32_t parts = h.num_partitions();
  h.per_machine.resize(rel.chunks.size());
  h.global.assign(parts, 0);
  for (size_t m = 0; m < rel.chunks.size(); ++m) {
    const Relation& chunk = rel.chunks[m];
    auto& counts = h.per_machine[m];
    counts.assign(parts, 0);
    for (uint64_t i = 0; i < chunk.num_tuples(); ++i) {
      ++counts[FirstPassPartition(chunk.Key(i), radix_bits)];
    }
    for (uint32_t p = 0; p < parts; ++p) h.global[p] += counts[p];
  }
  return h;
}

GenericHistograms ComputeHistogramsWith(const DistributedRelation& rel,
                                        const Partitioner& partitioner) {
  GenericHistograms h;
  const uint32_t parts = partitioner.num_partitions();
  h.per_machine.resize(rel.chunks.size());
  h.global.assign(parts, 0);
  for (size_t m = 0; m < rel.chunks.size(); ++m) {
    const Relation& chunk = rel.chunks[m];
    auto& counts = h.per_machine[m];
    counts.assign(parts, 0);
    for (uint64_t i = 0; i < chunk.num_tuples(); ++i) {
      ++counts[partitioner.PartitionOf(chunk.Key(i))];
    }
    for (uint32_t p = 0; p < parts; ++p) h.global[p] += counts[p];
  }
  return h;
}

}  // namespace rdmajoin
