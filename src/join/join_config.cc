#include "join/join_config.h"

#include <algorithm>

#include "transport/wire_format.h"

namespace rdmajoin {

Status JoinConfig::Validate() const {
  if (network_radix_bits == 0 || network_radix_bits > 20) {
    return Status::InvalidArgument("network_radix_bits must be in [1, 20]");
  }
  if (cache_partition_bytes == 0) {
    return Status::InvalidArgument("cache_partition_bytes must be positive");
  }
  if (rdma_buffer_bytes == 0) {
    return Status::InvalidArgument("rdma_buffer_bytes must be positive");
  }
  if (buffers_per_partition == 0) {
    return Status::InvalidArgument("buffers_per_partition must be >= 1");
  }
  if (recv_buffers_per_link == 0) {
    return Status::InvalidArgument("recv_buffers_per_link must be >= 1");
  }
  if (scale_up < 1.0) {
    return Status::InvalidArgument("scale_up must be >= 1");
  }
  if (skew_split_factor < 0) {
    return Status::InvalidArgument("skew_split_factor must be >= 0");
  }
  if (local_bits_per_pass == 0 || local_bits_per_pass > 20) {
    return Status::InvalidArgument("local_bits_per_pass must be in [1, 20]");
  }
  if (retry_backoff_seconds < 0) {
    return Status::InvalidArgument("retry_backoff_seconds must be >= 0");
  }
  if (send_timeout_seconds <= 0) {
    return Status::InvalidArgument("send_timeout_seconds must be positive");
  }
  return Status::OK();
}

uint64_t JoinConfig::ActualRdmaBufferBytes(uint32_t tuple_bytes) const {
  // Payload capacity of one buffer. The 16-byte wire header is allocated on
  // top of this and excluded from the virtual traffic accounting: at full
  // scale it is 16 B per 64 KB and would otherwise be inflated by scale_up.
  const uint64_t scaled = static_cast<uint64_t>(
      static_cast<double>(rdma_buffer_bytes) / scale_up);
  return std::max<uint64_t>(scaled, tuple_bytes);
}

uint64_t JoinConfig::ActualCachePartitionBytes(uint32_t tuple_bytes) const {
  const uint64_t scaled = static_cast<uint64_t>(
      static_cast<double>(cache_partition_bytes) / scale_up);
  return std::max<uint64_t>(scaled, tuple_bytes);
}

}  // namespace rdmajoin
