#ifndef RDMAJOIN_JOIN_DISTRIBUTED_JOIN_H_
#define RDMAJOIN_JOIN_DISTRIBUTED_JOIN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "join/join_config.h"
#include "join/result_stats.h"
#include "timing/phase_times.h"
#include "timing/replay.h"
#include "timing/trace.h"
#include "util/statusor.h"
#include "workload/relation.h"

namespace rdmajoin {

/// Network and buffer-management bookkeeping of one run (full-scale units
/// where noted).
struct NetworkSummary {
  /// Bytes put on the wire, virtual (full-scale).
  double virtual_wire_bytes = 0;
  uint64_t messages_sent = 0;
  /// Send-buffer pool behaviour, summed over machines.
  uint64_t pool_buffers_created = 0;
  uint64_t pool_acquisitions = 0;
  /// Virtual seconds spent registering destination regions up front
  /// (one-sided transport), max over machines.
  double setup_registration_seconds = 0;
};

/// Complete result of a simulated distributed join execution.
struct JoinRunResult {
  JoinResultStats stats;
  /// Virtual (full-scale) per-phase times from the timing replay.
  PhaseTimes times;
  /// Detailed replay outputs (receiver utilization etc.).
  ReplayReport replay;
  NetworkSummary net;
  /// The execution trace (kept for model verification and debugging).
  RunTrace trace;
  /// When JoinConfig::materialize_results is set: the result relation,
  /// partitioned by join key across machines -- chunk m holds the
  /// <join_key, inner_rid> tuples produced on machine m, ready for the next
  /// pipeline operator (Section 7).
  DistributedRelation output;
};

/// The distributed radix hash join of Section 4, executed on a simulated
/// cluster. The data path is real: tuples are partitioned, shipped through
/// the configured transport into per-machine partition stores, repartitioned
/// locally and joined; the returned times are virtual full-scale seconds
/// computed by the discrete-event replay.
class DistributedJoin {
 public:
  /// `cluster` describes the hardware (see cluster/presets.h), `config` the
  /// algorithm parameters. Both are validated in Run.
  DistributedJoin(ClusterConfig cluster, JoinConfig config)
      : cluster_(std::move(cluster)), config_(std::move(config)) {}

  /// Joins `inner` with `outer`. Both must be fragmented over exactly
  /// cluster().num_machines machines and share one tuple width. Fails with
  /// ResourceExhausted if the workload does not fit the cluster's memory
  /// (e.g. the paper's 2 x 4096 M-tuple join on two 128 GB machines).
  StatusOr<JoinRunResult> Run(const DistributedRelation& inner,
                              const DistributedRelation& outer);

  const ClusterConfig& cluster() const { return cluster_; }
  const JoinConfig& config() const { return config_; }

 private:
  /// Greedy inter-machine task migration for skewed workloads (the future
  /// work of Sections 6.5/8): whole build/probe tasks move from the machine
  /// with the latest estimated finish time to the earliest one, as long as
  /// the pairwise makespan (including the data-transfer delay on the
  /// receiver) improves. Mutates the per-machine task lists and
  /// stolen_in_bytes counters of `trace`.
  void RebalanceTasks(RunTrace* trace) const;

  ClusterConfig cluster_;
  JoinConfig config_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_JOIN_DISTRIBUTED_JOIN_H_
