#include "join/swwc_scatter.h"

#include <cassert>
#include <cstring>

#include "util/bit_ops.h"

namespace rdmajoin {

std::vector<Relation> RadixScatterSwwc(const Relation& in, uint32_t shift,
                                       uint32_t bits, uint32_t buffer_tuples) {
  assert(buffer_tuples >= 1);
  const uint32_t parts = uint32_t{1} << bits;
  const uint32_t width = in.tuple_bytes();

  // Exact output offsets from a histogram pass (no reallocation, the output
  // of each partition is one contiguous region).
  std::vector<uint64_t> counts(parts, 0);
  for (uint64_t i = 0; i < in.num_tuples(); ++i) {
    ++counts[RadixBits(in.Key(i), shift, bits)];
  }
  std::vector<Relation> out;
  out.reserve(parts);
  for (uint32_t p = 0; p < parts; ++p) {
    Relation r(width);
    r.Resize(counts[p]);
    out.push_back(std::move(r));
  }

  // Staging buffers: buffer_tuples rows per partition, flushed in blocks.
  std::vector<uint8_t> stage(static_cast<size_t>(parts) * buffer_tuples * width);
  std::vector<uint32_t> fill(parts, 0);
  std::vector<uint64_t> cursor(parts, 0);
  auto flush = [&](uint32_t p) {
    if (fill[p] == 0) return;
    std::memcpy(out[p].TupleAt(cursor[p]),
                stage.data() + static_cast<size_t>(p) * buffer_tuples * width,
                static_cast<size_t>(fill[p]) * width);
    cursor[p] += fill[p];
    fill[p] = 0;
  };
  for (uint64_t i = 0; i < in.num_tuples(); ++i) {
    const uint32_t p = static_cast<uint32_t>(RadixBits(in.Key(i), shift, bits));
    std::memcpy(stage.data() +
                    (static_cast<size_t>(p) * buffer_tuples + fill[p]) * width,
                in.TupleAt(i), width);
    if (++fill[p] == buffer_tuples) flush(p);
  }
  for (uint32_t p = 0; p < parts; ++p) flush(p);
  return out;
}

}  // namespace rdmajoin
