#ifndef RDMAJOIN_JOIN_PARTITIONER_H_
#define RDMAJOIN_JOIN_PARTITIONER_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace rdmajoin {

/// Maps join/group keys to first-pass partitions. The radix hash join uses
/// the low key bits (Section 3.1); the distributed sort-merge join uses
/// range boundaries so each partition is a contiguous key range.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual uint32_t PartitionOf(uint64_t key) const = 0;
  virtual uint32_t num_partitions() const = 0;
};

/// Radix partitioning: partition = key & (2^bits - 1).
class RadixPartitioner : public Partitioner {
 public:
  explicit RadixPartitioner(uint32_t bits)
      : bits_(bits), mask_((uint64_t{1} << bits) - 1) {
    assert(bits >= 1 && bits <= 20);
  }
  uint32_t PartitionOf(uint64_t key) const override {
    return static_cast<uint32_t>(key & mask_);
  }
  uint32_t num_partitions() const override { return uint32_t{1} << bits_; }

 private:
  uint32_t bits_;
  uint64_t mask_;
};

/// Range partitioning: partition p covers keys in
/// [splitters[p-1], splitters[p]), with open ends. `splitters` must be
/// strictly increasing; there are splitters.size() + 1 partitions.
class RangePartitioner : public Partitioner {
 public:
  explicit RangePartitioner(std::vector<uint64_t> splitters)
      : splitters_(std::move(splitters)) {
    assert(std::is_sorted(splitters_.begin(), splitters_.end()));
  }
  uint32_t PartitionOf(uint64_t key) const override {
    return static_cast<uint32_t>(
        std::upper_bound(splitters_.begin(), splitters_.end(), key) -
        splitters_.begin());
  }
  uint32_t num_partitions() const override {
    return static_cast<uint32_t>(splitters_.size()) + 1;
  }
  const std::vector<uint64_t>& splitters() const { return splitters_; }

 private:
  std::vector<uint64_t> splitters_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_JOIN_PARTITIONER_H_
