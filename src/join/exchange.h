#ifndef RDMAJOIN_JOIN_EXCHANGE_H_
#define RDMAJOIN_JOIN_EXCHANGE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/memory_space.h"
#include "join/join_config.h"
#include "join/partitioner.h"
#include "timing/trace.h"
#include "transport/channel.h"
#include "util/statusor.h"
#include "workload/relation.h"

namespace rdmajoin {

/// Per-machine storage for the partitions a machine is assigned. Local
/// tuples are appended directly by the partitioning threads; remote tuples
/// arrive through the transport (PartitionSink::Deliver).
class PartitionStore : public PartitionSink {
 public:
  /// Storage for `num_partitions` partitions of `num_relations` relations of
  /// `tuple_bytes`-wide tuples.
  PartitionStore(uint32_t tuple_bytes, uint32_t num_partitions,
                 uint32_t num_relations);

  /// Allocates the (partition, relation) slots for a partition this machine
  /// owns, reserving capacity from the global histogram.
  void Prepare(uint32_t partition, const std::vector<uint64_t>& tuples_per_relation);

  void Deliver(uint32_t partition, uint32_t relation, const uint8_t* tuples,
               uint64_t bytes) override;

  /// The (partition, relation) slot; the partition must be prepared.
  Relation& Rel(uint32_t partition, uint32_t relation);
  bool IsPrepared(uint32_t partition) const { return slots_[partition] != nullptr; }
  uint32_t num_relations() const { return num_relations_; }

 private:
  uint32_t tuple_bytes_;
  uint32_t num_relations_;
  std::vector<std::unique_ptr<std::vector<Relation>>> slots_;
};

/// Tracks memory reservations against a MemorySpace, releasing on scope exit.
class ScopedReservation {
 public:
  explicit ScopedReservation(MemorySpace* space) : space_(space) {}
  ~ScopedReservation();
  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;
  Status Add(uint64_t bytes);

 private:
  MemorySpace* space_;
  uint64_t bytes_ = 0;
};

/// The network partitioning pass of Section 4.2, generalized over the
/// partition function and the number of input relations so that the radix
/// hash join, the distributed aggregation and the sort-merge join all share
/// it: every partitioning thread scans its slice of each input relation,
/// appends local tuples to the machine's partition store, fills pooled
/// RDMA buffers for remote partitions, and ships full buffers through the
/// configured transport, recording the execution trace for the timing
/// replay.
class Exchange {
 public:
  struct Result {
    /// stores[m] holds the partitions assigned to machine m.
    std::vector<std::unique_ptr<PartitionStore>> stores;
    /// Network bookkeeping of the pass.
    uint64_t messages_sent = 0;
    double virtual_wire_bytes = 0;
    uint64_t pool_buffers_created = 0;
    uint64_t pool_acquisitions = 0;
    double max_setup_registration_seconds = 0;
  };

  /// `assignment[p]` is the machine that processes partition p;
  /// `global_counts[rel][p]` the exact global tuple count (from the
  /// histogram exchange) used to size destination buffers.
  Exchange(const ClusterConfig& cluster, const JoinConfig& config,
           const Partitioner* partitioner, std::vector<uint32_t> assignment,
           std::vector<std::vector<uint64_t>> global_counts);

  /// Runs the pass over `inputs` (one or more relations fragmented across
  /// the cluster). `memories[m]` is machine m's budget; `reservations[m]`
  /// receives this pass's reservations (stores, RDMA buffers, rings).
  /// `trace->machines[m]` is filled with the thread traces and receiver
  /// bookkeeping of machine m.
  StatusOr<Result> Run(const std::vector<const DistributedRelation*>& inputs,
                       std::vector<MemorySpace*> memories,
                       std::vector<ScopedReservation*> reservations,
                       RunTrace* trace);

 private:
  /// Receiver-driven variant for TransportKind::kRdmaRead (Section 3.2.2's
  /// other one-sided primitive): every machine first partitions its input
  /// into registered local staging regions (local tuples go straight to the
  /// store), then each destination machine pulls its partitions from every
  /// peer's staging with chunked RDMA READs. The registration cost of the
  /// staged data is charged to the source machines; no receiver copies.
  StatusOr<Result> RunPull(const std::vector<const DistributedRelation*>& inputs,
                           std::vector<MemorySpace*> memories,
                           std::vector<ScopedReservation*> reservations,
                           RunTrace* trace);

  const ClusterConfig& cluster_;
  const JoinConfig& config_;
  const Partitioner* partitioner_;
  std::vector<uint32_t> assignment_;
  std::vector<std::vector<uint64_t>> global_counts_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_JOIN_EXCHANGE_H_
