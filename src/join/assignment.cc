#include "join/assignment.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace rdmajoin {

std::vector<uint32_t> RoundRobinAssignment(uint32_t num_partitions,
                                           uint32_t num_machines) {
  assert(num_machines > 0);
  std::vector<uint32_t> assignment(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) assignment[p] = p % num_machines;
  return assignment;
}

std::vector<uint32_t> SkewAwareAssignment(const std::vector<uint64_t>& combined_counts,
                                          uint32_t num_machines) {
  assert(num_machines > 0);
  const uint32_t parts = static_cast<uint32_t>(combined_counts.size());
  std::vector<uint32_t> order(parts);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return combined_counts[a] > combined_counts[b];
  });
  std::vector<uint32_t> assignment(parts);
  for (uint32_t rank = 0; rank < parts; ++rank) {
    assignment[order[rank]] = rank % num_machines;
  }
  return assignment;
}

std::vector<uint64_t> AssignedLoad(const std::vector<uint64_t>& combined_counts,
                                   const std::vector<uint32_t>& assignment,
                                   uint32_t num_machines) {
  std::vector<uint64_t> load(num_machines, 0);
  for (size_t p = 0; p < combined_counts.size(); ++p) {
    load[assignment[p]] += combined_counts[p];
  }
  return load;
}

}  // namespace rdmajoin
