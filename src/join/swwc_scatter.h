#ifndef RDMAJOIN_JOIN_SWWC_SCATTER_H_
#define RDMAJOIN_JOIN_SWWC_SCATTER_H_

#include <cstdint>
#include <vector>

#include "workload/relation.h"

namespace rdmajoin {

/// Radix scatter with software-managed write-combining buffers (the
/// Balkesen et al. optimization the paper's implementation inherits):
/// tuples are staged in small cache-line-sized buffers, one per output
/// partition, and flushed to the partition's output region in blocks. On
/// real hardware this turns the random scatter into sequential streaming
/// stores and bounds the simultaneously-touched pages to the buffer set --
/// the micro benchmark (micro_join_kernels) compares it against the plain
/// scatter on this machine.
///
/// `buffer_tuples` is the capacity of one staging buffer (a cache line holds
/// 4 narrow tuples; Balkesen et al. use cache-line-sized buffers).
std::vector<Relation> RadixScatterSwwc(const Relation& in, uint32_t shift,
                                       uint32_t bits, uint32_t buffer_tuples = 4);

}  // namespace rdmajoin

#endif  // RDMAJOIN_JOIN_SWWC_SCATTER_H_
