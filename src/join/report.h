#ifndef RDMAJOIN_JOIN_REPORT_H_
#define RDMAJOIN_JOIN_REPORT_H_

#include <string>

#include "cluster/cluster.h"
#include "join/distributed_join.h"
#include "workload/generator.h"

namespace rdmajoin {

class MetricsRegistry;

/// Formats a human-readable report of one join run: phase breakdown,
/// network utilization, receiver load, buffer-pool behaviour and (when a
/// ground truth is supplied) the verification verdict. Used by the CLI and
/// examples; benches print figure-shaped tables instead.
///
/// When `metrics` is the registry the run recorded into (JoinConfig::metrics)
/// an observability section is appended: per-host delivered bytes and the
/// per-device registration and buffer-pool high-water numbers.
std::string FormatRunReport(const ClusterConfig& cluster, const JoinRunResult& result,
                            const GroundTruth* truth = nullptr,
                            const MetricsRegistry* metrics = nullptr);

/// One-line verdict: "verified (N matches)" or a mismatch description.
std::string VerifyAgainstTruth(const JoinResultStats& stats, const GroundTruth& truth);

}  // namespace rdmajoin

#endif  // RDMAJOIN_JOIN_REPORT_H_
