#include "join/local_partition.h"

#include <algorithm>

#include "util/bit_ops.h"

namespace rdmajoin {

std::vector<Relation> RadixScatter(const Relation& in, uint32_t shift, uint32_t bits) {
  const uint32_t parts = uint32_t{1} << bits;
  std::vector<uint64_t> counts(parts, 0);
  for (uint64_t i = 0; i < in.num_tuples(); ++i) {
    ++counts[RadixBits(in.Key(i), shift, bits)];
  }
  std::vector<Relation> out;
  out.reserve(parts);
  for (uint32_t p = 0; p < parts; ++p) {
    Relation r(in.tuple_bytes());
    r.Reserve(counts[p]);
    out.push_back(std::move(r));
  }
  for (uint64_t i = 0; i < in.num_tuples(); ++i) {
    const uint32_t p = static_cast<uint32_t>(RadixBits(in.Key(i), shift, bits));
    out[p].AppendRaw(in.TupleAt(i), 1);
  }
  return out;
}

uint32_t BitsForTarget(uint64_t max_partition_bytes, uint64_t target_bytes,
                       uint32_t max_bits) {
  if (target_bytes == 0 || max_partition_bytes <= target_bytes) return 0;
  const uint64_t chunks = CeilDiv(max_partition_bytes, target_bytes);
  return std::min(Log2Ceil(chunks), max_bits);
}

std::vector<Relation> RadixScatterMultiPass(const Relation& in, uint32_t shift,
                                            uint32_t bits, uint32_t bits_per_pass,
                                            uint32_t* passes,
                                            uint64_t* bytes_processed) {
  if (passes != nullptr) *passes = 0;
  if (bytes_processed != nullptr) *bytes_processed = 0;
  if (bits == 0) {
    std::vector<Relation> out;
    out.push_back(Relation(in.tuple_bytes()));
    out[0].AppendRaw(in.data(), in.num_tuples());
    return out;
  }
  // Pass i refines every partition of pass i-1 by the next bit window.
  std::vector<Relation> current;
  current.push_back(Relation(in.tuple_bytes()));
  current[0].AppendRaw(in.data(), in.num_tuples());
  uint32_t done_bits = 0;
  while (done_bits < bits) {
    const uint32_t step = std::min(bits_per_pass, bits - done_bits);
    std::vector<Relation> next;
    next.reserve(current.size() << step);
    for (Relation& part : current) {
      auto sub = RadixScatter(part, shift + done_bits, step);
      part.Deallocate();
      for (auto& s : sub) next.push_back(std::move(s));
    }
    if (bytes_processed != nullptr) *bytes_processed += in.size_bytes();
    if (passes != nullptr) ++*passes;
    done_bits += step;
    current = std::move(next);
  }
  // Partitions are currently ordered with the pass-1 window as the major
  // index; reorder to plain radix order of the full window (low bits of the
  // window vary fastest across pass-1 partitions, so re-index).
  const uint32_t total = uint32_t{1} << bits;
  std::vector<Relation> out;
  out.reserve(total);
  out.resize(0);
  // current[i] holds the partition whose window value has the pass-window
  // digits in little-endian pass order; compute the radix value per index.
  std::vector<uint32_t> radix_of(total);
  {
    // Reconstruct digit widths.
    std::vector<uint32_t> widths;
    uint32_t remaining = bits;
    while (remaining > 0) {
      const uint32_t step = std::min(bits_per_pass, remaining);
      widths.push_back(step);
      remaining -= step;
    }
    for (uint32_t idx = 0; idx < total; ++idx) {
      // idx enumerates: outer loop over pass-1 digit, then pass-2 digit, ...
      uint32_t rest = idx;
      uint32_t value = 0;
      uint32_t shift_acc = 0;
      // idx = ((d1 * 2^w2 + d2) * 2^w3 + d3) ...; digits d1 is the lowest
      // window bits (pass 1 partitions were split first).
      std::vector<uint32_t> digits(widths.size());
      for (size_t p = widths.size(); p-- > 0;) {
        digits[p] = rest & ((1u << widths[p]) - 1);
        rest >>= widths[p];
      }
      for (size_t p = 0; p < widths.size(); ++p) {
        value |= digits[p] << shift_acc;
        shift_acc += widths[p];
      }
      radix_of[idx] = value;
    }
  }
  out.resize(total, Relation(in.tuple_bytes()));
  for (uint32_t idx = 0; idx < total; ++idx) {
    out[radix_of[idx]] = std::move(current[idx]);
  }
  return out;
}

}  // namespace rdmajoin
