#include "join/distributed_join.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "cluster/memory_space.h"
#include "join/assignment.h"
#include "join/exchange.h"
#include "join/hash_table.h"
#include "join/histogram.h"
#include "join/local_partition.h"
#include "join/partitioner.h"
#include "transport/collectives.h"
#include "util/logging.h"

namespace rdmajoin {

void DistributedJoin::RebalanceTasks(RunTrace* trace) const {
  const uint32_t nm = cluster_.num_machines;
  const double cores = cluster_.cores_per_machine;
  const double scale = config_.scale_up;
  const double hb = cluster_.costs.build_bytes_per_sec;
  const double hp = cluster_.costs.probe_bytes_per_sec;
  const double bandwidth = cluster_.transport == TransportKind::kTcp
                               ? cluster_.tcp.bytes_per_sec
                               : cluster_.fabric.EffectiveEgress();
  auto task_seconds = [&](const BuildProbeTask& t) {
    return t.build_bytes * scale / hb + t.probe_bytes * scale / hp;
  };
  // Estimated finish time of a machine: average load plus the serialized
  // arrival of stolen partition data.
  std::vector<double> load(nm, 0);
  double total_seconds = 0;
  for (uint32_t m = 0; m < nm; ++m) {
    for (const BuildProbeTask& t : trace->machines[m].tasks) {
      load[m] += task_seconds(t);
    }
    total_seconds += load[m];
  }
  // Inter-machine sharing implies splitting oversized probe ranges across
  // machine boundaries (the Section 6.5 extension): chop any task larger
  // than the perfect-balance quantum into chunks that can migrate
  // independently. Every chunk carries the table; only the first builds it
  // at home.
  const double quantum =
      std::max(total_seconds / (nm * cores), 1e-12);
  for (uint32_t m = 0; m < nm; ++m) {
    std::vector<BuildProbeTask> chunked;
    for (const BuildProbeTask& t : trace->machines[m].tasks) {
      const double sec = task_seconds(t);
      if (sec <= 2 * quantum || t.probe_bytes == 0) {
        chunked.push_back(t);
        continue;
      }
      const uint64_t pieces = static_cast<uint64_t>(std::ceil(sec / quantum));
      const double probe_chunk = t.probe_bytes / static_cast<double>(pieces);
      chunked.push_back(BuildProbeTask{t.build_bytes, probe_chunk, t.table_bytes});
      for (uint64_t c = 1; c < pieces; ++c) {
        chunked.push_back(BuildProbeTask{0, probe_chunk, t.table_bytes});
      }
    }
    trace->machines[m].tasks = std::move(chunked);
  }
  auto finish = [&](uint32_t m) {
    return load[m] / cores +
           static_cast<double>(trace->machines[m].stolen_in_bytes) * scale / bandwidth;
  };
  // One whole task moves per round; bounded to keep the heuristic linear in
  // practice (far fewer moves than tasks are ever profitable).
  const size_t max_moves = 64 * nm;
  for (size_t moves = 0; moves < max_moves; ++moves) {
    uint32_t donor = 0, receiver = 0;
    for (uint32_t m = 1; m < nm; ++m) {
      if (finish(m) > finish(donor)) donor = m;
      if (finish(m) < finish(receiver)) receiver = m;
    }
    if (donor == receiver) break;
    // Largest task on the donor. Probe-split chunks (build_bytes == 0) share
    // their parent's hash table at home; when stolen, the table data ships
    // along and is rebuilt on the receiver.
    auto& tasks = trace->machines[donor].tasks;
    size_t best = tasks.size();
    double best_sec = 0;
    for (size_t i = 0; i < tasks.size(); ++i) {
      const double sec = task_seconds(tasks[i]);
      if (sec > best_sec) {
        best_sec = sec;
        best = i;
      }
    }
    if (best == tasks.size()) break;
    BuildProbeTask task = tasks[best];
    const uint64_t move_bytes =
        static_cast<uint64_t>(task.table_bytes + task.probe_bytes);
    // Cost of the task once it runs on the receiver (table rebuild included).
    BuildProbeTask remote_task = task;
    if (remote_task.build_bytes == 0) remote_task.build_bytes = task.table_bytes;
    const double remote_sec = task_seconds(remote_task);
    const double donor_after =
        (load[donor] - best_sec) / cores +
        static_cast<double>(trace->machines[donor].stolen_in_bytes) * scale /
            bandwidth;
    const double receiver_after =
        (load[receiver] + remote_sec) / cores +
        static_cast<double>(trace->machines[receiver].stolen_in_bytes + move_bytes) *
            scale / bandwidth;
    if (std::max(donor_after, receiver_after) + 1e-12 >=
        std::max(finish(donor), finish(receiver))) {
      break;  // No further profitable move.
    }
    tasks[best] = tasks.back();
    tasks.pop_back();
    trace->machines[receiver].tasks.push_back(remote_task);
    trace->machines[receiver].stolen_in_bytes += move_bytes;
    load[donor] -= best_sec;
    load[receiver] += remote_sec;
  }
}

StatusOr<JoinRunResult> DistributedJoin::Run(const DistributedRelation& inner,
                                             const DistributedRelation& outer) {
  RDMAJOIN_RETURN_IF_ERROR(cluster_.Validate());
  RDMAJOIN_RETURN_IF_ERROR(config_.Validate());
  const uint32_t nm = cluster_.num_machines;
  if (inner.chunks.size() != nm || outer.chunks.size() != nm) {
    return Status::InvalidArgument(
        "relations must be fragmented over exactly num_machines machines");
  }
  if (inner.tuple_bytes() != outer.tuple_bytes()) {
    return Status::InvalidArgument("relations must share one tuple width");
  }
  const uint32_t tuple_bytes = inner.tuple_bytes();
  const uint32_t b1 = config_.network_radix_bits;
  const uint32_t parts = uint32_t{1} << b1;
  const double scale = config_.scale_up;
  auto virt = [scale](uint64_t actual) {
    return static_cast<uint64_t>(static_cast<double>(actual) * scale);
  };

  JoinRunResult result;
  result.trace.scale_up = scale;
  result.trace.machines.resize(nm);

  // Machine memory budgets; the loaded input chunks occupy memory for the
  // whole join (the paper materializes the result later in the pipeline).
  std::vector<MemorySpace> memories;
  memories.reserve(nm);
  for (uint32_t m = 0; m < nm; ++m) {
    memories.emplace_back(cluster_.memory_per_machine_bytes);
  }
  std::vector<std::unique_ptr<ScopedReservation>> reservations;
  for (uint32_t m = 0; m < nm; ++m) {
    reservations.push_back(std::make_unique<ScopedReservation>(&memories[m]));
    RDMAJOIN_RETURN_IF_ERROR(reservations[m]->Add(
        virt(inner.chunks[m].size_bytes() + outer.chunks[m].size_bytes())));
  }

  // ---- Phase 0: histograms (thread -> machine -> global, Section 4.1). ----
  RelationHistograms hist_r = ComputeHistograms(inner, b1);
  RelationHistograms hist_s = ComputeHistograms(outer, b1);
  // Exchange the machine-level histograms over the control plane (verbs
  // all-gather) and reduce them into the global histograms every machine
  // needs for buffer sizing and the machine-partition assignment.
  if (nm > 1) {
    auto collectives = CollectiveNetwork::Create(nm, 2ull * parts, cluster_.costs,
                                                 config_.validator);
    RDMAJOIN_RETURN_IF_ERROR(collectives.status());
    std::vector<std::vector<uint64_t>> contributions(nm);
    for (uint32_t m = 0; m < nm; ++m) {
      contributions[m] = hist_r.per_machine[m];
      contributions[m].insert(contributions[m].end(), hist_s.per_machine[m].begin(),
                              hist_s.per_machine[m].end());
    }
    auto reduced = (*collectives)->AllReduceSum(contributions);
    RDMAJOIN_RETURN_IF_ERROR(reduced.status());
    hist_r.global.assign(reduced->begin(), reduced->begin() + parts);
    hist_s.global.assign(reduced->begin() + parts, reduced->end());
  }
  const double port_bandwidth = cluster_.transport == TransportKind::kTcp
                                    ? cluster_.tcp.bytes_per_sec
                                    : cluster_.fabric.EffectiveEgress();
  const double exchange_seconds = CollectiveNetwork::ExchangeSeconds(
      nm, 2ull * parts * sizeof(uint64_t), port_bandwidth,
      cluster_.fabric.base_latency_seconds);
  for (uint32_t m = 0; m < nm; ++m) {
    result.trace.machines[m].histogram_bytes =
        inner.chunks[m].size_bytes() + outer.chunks[m].size_bytes();
    result.trace.machines[m].histogram_exchange_seconds = exchange_seconds;
  }

  // Partition-to-machine assignment.
  std::vector<uint32_t> assignment;
  if (config_.assignment == AssignmentPolicy::kRoundRobin) {
    assignment = RoundRobinAssignment(parts, nm);
  } else {
    std::vector<uint64_t> combined(parts);
    for (uint32_t p = 0; p < parts; ++p) {
      combined[p] = hist_r.global[p] + hist_s.global[p];
    }
    assignment = SkewAwareAssignment(combined, nm);
  }

  RDMAJOIN_LOG(kDebug) << "histograms exchanged over " << nm << " machines ("
                       << parts << " partitions)";

  // ---- Phase 1: network partitioning pass (Section 4.2). ----
  RadixPartitioner partitioner(b1);
  Exchange exchange(cluster_, config_, &partitioner, assignment,
                    {hist_r.global, hist_s.global});
  std::vector<MemorySpace*> memory_ptrs;
  std::vector<ScopedReservation*> reservation_ptrs;
  for (uint32_t m = 0; m < nm; ++m) {
    memory_ptrs.push_back(&memories[m]);
    reservation_ptrs.push_back(reservations[m].get());
  }
  auto exchanged = exchange.Run({&inner, &outer}, memory_ptrs, reservation_ptrs,
                                &result.trace);
  RDMAJOIN_RETURN_IF_ERROR(exchanged.status());
  auto& stores = exchanged->stores;
  result.net.virtual_wire_bytes = exchanged->virtual_wire_bytes;
  result.net.messages_sent = exchanged->messages_sent;
  result.net.pool_buffers_created = exchanged->pool_buffers_created;
  result.net.pool_acquisitions = exchanged->pool_acquisitions;
  result.net.setup_registration_seconds = exchanged->max_setup_registration_seconds;

  // ---- Phase 2: local partitioning passes (Section 4.2.3). ----
  const uint64_t cache_bytes = config_.ActualCachePartitionBytes(tuple_bytes);
  // final_parts[m]: pairs of cache-sized (R, S) partitions.
  std::vector<std::vector<std::pair<Relation, Relation>>> final_parts(nm);
  for (uint32_t m = 0; m < nm; ++m) {
    MachineTrace& mt = result.trace.machines[m];
    uint64_t assigned_bytes = 0;
    uint64_t max_r_bytes = 0;
    for (uint32_t p = 0; p < parts; ++p) {
      if (assignment[p] != m) continue;
      assigned_bytes +=
          stores[m]->Rel(p, 0).size_bytes() + stores[m]->Rel(p, 1).size_bytes();
      max_r_bytes = std::max(max_r_bytes, stores[m]->Rel(p, 0).size_bytes());
    }
    // Each pass is TLB-bounded (radix clustering): at most
    // local_bits_per_pass bits of fan-out at a time. The in-simulation bit
    // count is derived from the scaled cache target (enough for correct
    // cache-sized processing); the charged plan below stays the paper's
    // fixed-pass configuration.
    const uint32_t b2 =
        BitsForTarget(max_r_bytes, cache_bytes,
                      /*max_bits=*/2 * config_.local_bits_per_pass);
    for (uint32_t p = 0; p < parts; ++p) {
      if (assignment[p] != m) continue;
      Relation& rp = stores[m]->Rel(p, 0);
      Relation& sp = stores[m]->Rel(p, 1);
      if (b2 == 0) {
        final_parts[m].emplace_back(std::move(rp), std::move(sp));
      } else {
        auto r_sub = RadixScatterMultiPass(rp, b1, b2, config_.local_bits_per_pass);
        rp.Deallocate();
        auto s_sub = RadixScatterMultiPass(sp, b1, b2, config_.local_bits_per_pass);
        sp.Deallocate();
        for (size_t q = 0; q < r_sub.size(); ++q) {
          if (r_sub[q].empty() && s_sub[q].empty()) continue;
          final_parts[m].emplace_back(std::move(r_sub[q]), std::move(s_sub[q]));
        }
      }
    }
    // Charge the full-scale plan: num_local_passes passes over the assigned
    // data (the paper's 10+10-bit configuration charges one). The scaled
    // execution's pass count is a simulation artifact and not charged.
    mt.local_pass_bytes = assigned_bytes * config_.num_local_passes;
  }

  // ---- Phase 3: build & probe with skew splitting (Section 4.3). ----
  for (uint32_t m = 0; m < nm; ++m) {
    MachineTrace& mt = result.trace.machines[m];
    // Task list for the timing replay, with probe-range splitting for
    // oversized outer partitions.
    double total_probe_bytes = 0;
    for (const auto& [r, s] : final_parts[m]) total_probe_bytes += s.size_bytes();
    const double avg_probe_bytes =
        final_parts[m].empty() ? 0 : total_probe_bytes / final_parts[m].size();
    const double split_threshold = config_.skew_split_factor > 0
                                       ? config_.skew_split_factor * avg_probe_bytes
                                       : 0;
    for (const auto& [r, s] : final_parts[m]) {
      const double s_bytes = static_cast<double>(s.size_bytes());
      if (split_threshold > 0 && s_bytes > split_threshold) {
        // Split the probe range into near-equal chunks processed by
        // multiple threads; the build stays with the first task.
        const uint64_t chunks =
            static_cast<uint64_t>(std::ceil(s_bytes / split_threshold));
        const double chunk_bytes = s_bytes / static_cast<double>(chunks);
        const double table = static_cast<double>(r.size_bytes());
        mt.tasks.push_back(BuildProbeTask{table, chunk_bytes, table});
        for (uint64_t c = 1; c < chunks; ++c) {
          mt.tasks.push_back(BuildProbeTask{0, chunk_bytes, table});
        }
      } else {
        const double table = static_cast<double>(r.size_bytes());
        mt.tasks.push_back(BuildProbeTask{table, s_bytes, table});
      }
    }
    // Execute: build a table over each final R partition, probe with S.
    uint64_t machine_matches = 0;
    Relation output_chunk(kNarrowTupleBytes);
    for (const auto& [r, s] : final_parts[m]) {
      HashTable table(r);
      for (uint64_t i = 0; i < s.num_tuples(); ++i) {
        const uint64_t key = s.Key(i);
        const uint64_t outer_rid = s.Rid(i);
        table.Probe(key, [&](uint64_t inner_rid) {
          ++machine_matches;
          result.stats.key_sum += key;
          result.stats.inner_rid_sum += inner_rid;
          if (config_.materialize_results) {
            result.stats.pairs.emplace_back(inner_rid, outer_rid);
            output_chunk.Append(key, inner_rid);
          }
        });
      }
    }
    if (config_.materialize_results) {
      result.output.chunks.push_back(std::move(output_chunk));
    }
    result.stats.matches += machine_matches;
    if (config_.materialize_results) {
      // Result tuples are <inner_rid, outer_rid>, 16 bytes each, written to
      // local output buffers by the probing threads.
      mt.materialized_bytes = machine_matches * 16;
    }
  }

  // ---- Optional: inter-machine work stealing (Sections 6.5, 8). ----
  if (config_.enable_work_stealing && nm > 1) {
    RebalanceTasks(&result.trace);
  }

  // ---- Timing replay. ----
  ReplayOptions replay_options;
  replay_options.metrics = config_.metrics;
  replay_options.spans.enabled = config_.enable_spans;
  if (config_.span_budget_bytes > 0) {
    replay_options.spans.max_bytes = config_.span_budget_bytes;
  }
  replay_options.span_recorder = config_.span_recorder;
  replay_options.injector = config_.fault_injector;
  result.replay = ReplayTrace(cluster_, config_, result.trace, replay_options);
  result.times = result.replay.phases;
  RDMAJOIN_LOG(kInfo) << "join of " << (inner.total_tuples() + outer.total_tuples())
                      << " actual tuples on " << cluster_.name << ": "
                      << result.stats.matches << " matches, "
                      << result.times.TotalSeconds() << " virtual s";
  return result;
}

}  // namespace rdmajoin
