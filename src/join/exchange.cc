#include "join/exchange.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "rdma/buffer_pool.h"
#include "transport/wire_format.h"

namespace rdmajoin {

namespace {

/// Runs `fn` when the scope exits, on success and error paths alike. Used to
/// guarantee staging regions are deregistered before their device goes away.
template <typename Fn>
class ScopeExit {
 public:
  explicit ScopeExit(Fn fn) : fn_(std::move(fn)) {}
  ScopeExit(const ScopeExit&) = delete;
  ScopeExit& operator=(const ScopeExit&) = delete;
  ~ScopeExit() { fn_(); }

 private:
  Fn fn_;
};

}  // namespace

PartitionStore::PartitionStore(uint32_t tuple_bytes, uint32_t num_partitions,
                               uint32_t num_relations)
    : tuple_bytes_(tuple_bytes),
      num_relations_(num_relations),
      slots_(num_partitions) {}

void PartitionStore::Prepare(uint32_t partition,
                             const std::vector<uint64_t>& tuples_per_relation) {
  assert(tuples_per_relation.size() == num_relations_);
  auto slot = std::make_unique<std::vector<Relation>>();
  slot->reserve(num_relations_);
  for (uint32_t r = 0; r < num_relations_; ++r) {
    Relation rel(tuple_bytes_);
    rel.Reserve(tuples_per_relation[r]);
    slot->push_back(std::move(rel));
  }
  slots_[partition] = std::move(slot);
}

void PartitionStore::Deliver(uint32_t partition, uint32_t relation,
                             const uint8_t* tuples, uint64_t bytes) {
  assert(bytes % tuple_bytes_ == 0);
  Rel(partition, relation).AppendRaw(tuples, bytes / tuple_bytes_);
}

Relation& PartitionStore::Rel(uint32_t partition, uint32_t relation) {
  assert(partition < slots_.size());
  assert(slots_[partition] != nullptr && "tuple delivered to unassigned partition");
  assert(relation < num_relations_);
  return (*slots_[partition])[relation];
}

ScopedReservation::~ScopedReservation() {
  if (space_ != nullptr && bytes_ > 0) space_->Release(bytes_);
}

Status ScopedReservation::Add(uint64_t bytes) {
  RDMAJOIN_RETURN_IF_ERROR(space_->Reserve(bytes));
  bytes_ += bytes;
  return Status::OK();
}

Exchange::Exchange(const ClusterConfig& cluster, const JoinConfig& config,
                   const Partitioner* partitioner, std::vector<uint32_t> assignment,
                   std::vector<std::vector<uint64_t>> global_counts)
    : cluster_(cluster),
      config_(config),
      partitioner_(partitioner),
      assignment_(std::move(assignment)),
      global_counts_(std::move(global_counts)) {}

StatusOr<Exchange::Result> Exchange::Run(
    const std::vector<const DistributedRelation*>& inputs,
    std::vector<MemorySpace*> memories, std::vector<ScopedReservation*> reservations,
    RunTrace* trace) {
  if (cluster_.transport == TransportKind::kRdmaRead) {
    return RunPull(inputs, std::move(memories), std::move(reservations), trace);
  }
  const uint32_t nm = cluster_.num_machines;
  const uint32_t parts = partitioner_->num_partitions();
  const uint32_t num_relations = static_cast<uint32_t>(inputs.size());
  if (num_relations == 0) return Status::InvalidArgument("no input relations");
  if (assignment_.size() != parts || global_counts_.size() != num_relations) {
    return Status::InvalidArgument("assignment/global count shape mismatch");
  }
  if (memories.size() != nm || reservations.size() != nm) {
    return Status::InvalidArgument(
        "one memory space and one reservation per machine required");
  }
  if (trace == nullptr || trace->machines.size() != nm) {
    return Status::InvalidArgument("trace must carry one MachineTrace per machine");
  }
  const uint32_t tuple_bytes = inputs[0]->tuple_bytes();
  for (const auto* rel : inputs) {
    if (rel->chunks.size() != nm) {
      return Status::InvalidArgument("inputs must be fragmented over all machines");
    }
    if (rel->tuple_bytes() != tuple_bytes) {
      return Status::InvalidArgument("inputs must share one tuple width");
    }
  }
  const double scale = config_.scale_up;
  auto virt = [scale](uint64_t actual) {
    return static_cast<uint64_t>(static_cast<double>(actual) * scale);
  };

  Result result;
  // ---- Partition stores, sized from the (exchanged) global histogram. ----
  for (uint32_t m = 0; m < nm; ++m) {
    result.stores.push_back(
        std::make_unique<PartitionStore>(tuple_bytes, parts, num_relations));
  }
  for (uint32_t p = 0; p < parts; ++p) {
    const uint32_t m = assignment_[p];
    std::vector<uint64_t> counts(num_relations);
    uint64_t total = 0;
    for (uint32_t r = 0; r < num_relations; ++r) {
      counts[r] = global_counts_[r][p];
      total += counts[r];
    }
    result.stores[m]->Prepare(p, counts);
    RDMAJOIN_RETURN_IF_ERROR(reservations[m]->Add(virt(total * tuple_bytes)));
  }

  // Expected incoming volume per (dst, src) for one-sided staging: derived
  // from per-machine histograms of the inputs.
  std::vector<std::vector<uint64_t>> incoming_bytes;
  if (cluster_.transport == TransportKind::kRdmaMemory) {
    incoming_bytes.assign(nm, std::vector<uint64_t>(nm, 0));
    for (uint32_t r = 0; r < num_relations; ++r) {
      for (uint32_t src = 0; src < nm; ++src) {
        const Relation& chunk = inputs[r]->chunks[src];
        std::vector<uint64_t> counts(parts, 0);
        for (uint64_t i = 0; i < chunk.num_tuples(); ++i) {
          ++counts[partitioner_->PartitionOf(chunk.Key(i))];
        }
        for (uint32_t p = 0; p < parts; ++p) {
          const uint32_t dst = assignment_[p];
          if (dst != src) incoming_bytes[dst][src] += counts[p] * tuple_bytes;
        }
      }
    }
  }

  std::vector<PartitionSink*> sinks;
  for (auto& store : result.stores) sinks.push_back(store.get());
  auto network = TransportNetwork::Create(cluster_, config_, tuple_bytes,
                                          incoming_bytes, sinks, memories);
  RDMAJOIN_RETURN_IF_ERROR(network.status());
  TransportNetwork& net = **network;

  // ---- The pass itself (Section 4.2.1). ----
  const uint64_t payload_capacity = config_.ActualRdmaBufferBytes(tuple_bytes);
  const uint64_t buffer_bytes = payload_capacity + kWireHeaderBytes;
  const uint32_t threads = cluster_.PartitioningThreads();
  uint32_t remote_parts_max = 0;
  for (uint32_t m = 0; m < nm; ++m) {
    uint32_t remote = 0;
    for (uint32_t p = 0; p < parts; ++p) {
      if (assignment_[p] != m) ++remote;
    }
    remote_parts_max = std::max(remote_parts_max, remote);
  }
  const double per_send_reg_seconds =
      config_.preregister_buffers
          ? 0.0
          : cluster_.costs.RegistrationSeconds(virt(payload_capacity)) +
                cluster_.costs.DeregistrationSeconds(virt(payload_capacity));

  for (uint32_t m = 0; m < nm; ++m) {
    MachineTrace& mt = trace->machines[m];
    mt.setup_registration_seconds = net.stats().setup_registration_seconds[m];
    mt.per_send_registration_seconds = per_send_reg_seconds;
    mt.net_threads.resize(threads);

    // RDMA-buffer budget: buffers_per_partition buffers per thread and
    // remote partition (Figure 2).
    if (nm > 1 && remote_parts_max > 0) {
      RDMAJOIN_RETURN_IF_ERROR(reservations[m]->Add(
          static_cast<uint64_t>(threads) * remote_parts_max *
          config_.buffers_per_partition * virt(payload_capacity)));
    }

    RegisteredBufferPool pool(net.device(m), buffer_bytes,
                              config_.preregister_buffers
                                  ? RegisteredBufferPool::Policy::kPooled
                                  : RegisteredBufferPool::Policy::kRegisterOnDemand);
    Channel* channel = net.channel(m);
    const uint64_t payload_offset = channel->payload_offset();

    for (uint32_t t = 0; t < threads; ++t) {
      ThreadNetTrace& tt = mt.net_threads[t];
      std::vector<RegisteredBuffer*> slot(parts, nullptr);
      // A mid-pass abort (Ship or Acquire error below) must hand every buffer
      // still held in `slot` back to the pool exactly once, or the pool's
      // teardown reports them as buffer leaks. Successful paths null their
      // slot entries first, so this is a no-op for them.
      ScopeExit release_slots([&slot, &pool] {
        for (RegisteredBuffer*& b : slot) {
          if (b != nullptr) {
            // lint: discard-ok(cleanup on scope exit; leak shows up in teardown report)
            (void)pool.Release(b);
            b = nullptr;
          }
        }
      });

      auto ship_slot = [&](uint32_t p, uint32_t rel) -> Status {
        RegisteredBuffer* buf = slot[p];
        if (buf == nullptr || buf->used == 0) {
          if (buf != nullptr) {
            slot[p] = nullptr;
            RDMAJOIN_RETURN_IF_ERROR(pool.Release(buf));
          }
          return Status::OK();
        }
        ShipReport ship_report;
        auto wire = channel->Ship(assignment_[p], p, rel, buf, &ship_report);
        if (!wire.ok()) {
          // The payload never reached the destination; give the buffer's
          // credit back before propagating the (clean) abort status.
          slot[p] = nullptr;
          // lint: discard-ok(credit return on abort path; original status propagates)
          (void)pool.Release(buf);
          return wire.status();
        }
        SendRecord send{assignment_[p], p, *wire, tt.compute_bytes};
        send.retries = ship_report.retries;
        send.retry_delay_seconds = ship_report.delay_seconds;
        tt.sends.push_back(send);
        slot[p] = nullptr;
        RDMAJOIN_RETURN_IF_ERROR(pool.Release(buf));
        return Status::OK();
      };

      for (uint32_t rel = 0; rel < num_relations; ++rel) {
        const Relation& chunk = inputs[rel]->chunks[m];
        const uint64_t n = chunk.num_tuples();
        const uint64_t lo = n * t / threads;
        const uint64_t hi = n * (t + 1) / threads;
        for (uint64_t i = lo; i < hi; ++i) {
          const uint32_t p = partitioner_->PartitionOf(chunk.Key(i));
          tt.compute_bytes += tuple_bytes;
          if (assignment_[p] == m) {
            result.stores[m]->Rel(p, rel).AppendRaw(chunk.TupleAt(i), 1);
            continue;
          }
          if (slot[p] == nullptr) {
            auto buf = pool.Acquire();
            RDMAJOIN_RETURN_IF_ERROR(buf.status());
            slot[p] = *buf;
          }
          RegisteredBuffer* buf = slot[p];
          std::memcpy(buf->bytes() + payload_offset + buf->used, chunk.TupleAt(i),
                      tuple_bytes);
          buf->used += tuple_bytes;
          if (buf->used + tuple_bytes > payload_capacity) {
            RDMAJOIN_RETURN_IF_ERROR(ship_slot(p, rel));
          }
        }
        // Flush partially filled buffers before switching relations.
        for (uint32_t p = 0; p < parts; ++p) {
          RDMAJOIN_RETURN_IF_ERROR(ship_slot(p, rel));
        }
      }
    }
    result.pool_buffers_created += pool.buffers_created();
    result.pool_acquisitions += pool.acquisitions();
  }

  // Bookkeeping for the replay and the caller.
  for (uint32_t m = 0; m < nm; ++m) {
    trace->machines[m].recv_bytes = net.stats().recv_bytes[m];
    trace->machines[m].recv_messages = net.stats().recv_messages[m];
    for (const auto& tt : trace->machines[m].net_threads) {
      for (const auto& send : tt.sends) {
        result.virtual_wire_bytes += static_cast<double>(send.wire_bytes) * scale;
      }
      result.messages_sent += tt.sends.size();
    }
    result.max_setup_registration_seconds =
        std::max(result.max_setup_registration_seconds,
                 trace->machines[m].setup_registration_seconds);
  }
  return result;
}


StatusOr<Exchange::Result> Exchange::RunPull(
    const std::vector<const DistributedRelation*>& inputs,
    std::vector<MemorySpace*> memories, std::vector<ScopedReservation*> reservations,
    RunTrace* trace) {
  const uint32_t nm = cluster_.num_machines;
  const uint32_t parts = partitioner_->num_partitions();
  const uint32_t num_relations = static_cast<uint32_t>(inputs.size());
  if (num_relations == 0) return Status::InvalidArgument("no input relations");
  if (assignment_.size() != parts || global_counts_.size() != num_relations) {
    return Status::InvalidArgument("assignment/global count shape mismatch");
  }
  if (memories.size() != nm || reservations.size() != nm) {
    return Status::InvalidArgument(
        "one memory space and one reservation per machine required");
  }
  if (trace == nullptr || trace->machines.size() != nm) {
    return Status::InvalidArgument("trace must carry one MachineTrace per machine");
  }
  const uint32_t tuple_bytes = inputs[0]->tuple_bytes();
  for (const auto* rel : inputs) {
    if (rel->chunks.size() != nm) {
      return Status::InvalidArgument("inputs must be fragmented over all machines");
    }
    if (rel->tuple_bytes() != tuple_bytes) {
      return Status::InvalidArgument("inputs must share one tuple width");
    }
  }
  const double scale = config_.scale_up;
  auto virt = [scale](uint64_t actual) {
    return static_cast<uint64_t>(static_cast<double>(actual) * scale);
  };

  Result result;
  for (uint32_t m = 0; m < nm; ++m) {
    result.stores.push_back(
        std::make_unique<PartitionStore>(tuple_bytes, parts, num_relations));
  }
  for (uint32_t p = 0; p < parts; ++p) {
    const uint32_t m = assignment_[p];
    std::vector<uint64_t> counts(num_relations);
    uint64_t total = 0;
    for (uint32_t r = 0; r < num_relations; ++r) {
      counts[r] = global_counts_[r][p];
      total += counts[r];
    }
    result.stores[m]->Prepare(p, counts);
    RDMAJOIN_RETURN_IF_ERROR(reservations[m]->Add(virt(total * tuple_bytes)));
  }

  std::vector<PartitionSink*> sinks;
  for (auto& store : result.stores) sinks.push_back(store.get());
  auto network = TransportNetwork::Create(cluster_, config_, tuple_bytes,
                                          /*incoming_bytes=*/{}, sinks, memories);
  RDMAJOIN_RETURN_IF_ERROR(network.status());
  TransportNetwork& net = **network;

  const uint32_t threads = cluster_.PartitioningThreads();

  // ---- Stage 1: partition into registered local staging regions. ----
  // stage[m][p * num_relations + rel] holds machine m's tuples destined for
  // remote partition p of relation rel.
  std::vector<std::vector<Relation>> stage(nm);
  std::vector<std::vector<MemoryRegion>> stage_mrs(nm);
  // Every exit path -- including errors below, which used to leak the pinned
  // staging regions into device teardown -- deregisters whatever was
  // registered. Runs before `net` is destroyed (declaration order).
  ScopeExit deregister_staging([&stage_mrs, &net] {
    for (uint32_t m = 0; m < stage_mrs.size(); ++m) {
      for (const MemoryRegion& mr : stage_mrs[m]) {
        // lint: discard-ok(scope-exit teardown; validator reports any leak)
        if (mr.length > 0) (void)net.device(m)->DeregisterMemory(mr);
      }
    }
  });
  for (uint32_t m = 0; m < nm; ++m) {
    MachineTrace& mt = trace->machines[m];
    mt.net_threads.resize(threads);
    stage[m].assign(static_cast<size_t>(parts) * num_relations,
                    Relation(tuple_bytes));
    uint64_t staged_bytes = 0;
    for (uint32_t t = 0; t < threads; ++t) {
      ThreadNetTrace& tt = mt.net_threads[t];
      for (uint32_t rel = 0; rel < num_relations; ++rel) {
        const Relation& chunk = inputs[rel]->chunks[m];
        const uint64_t n = chunk.num_tuples();
        const uint64_t lo = n * t / threads;
        const uint64_t hi = n * (t + 1) / threads;
        for (uint64_t i = lo; i < hi; ++i) {
          const uint32_t p = partitioner_->PartitionOf(chunk.Key(i));
          tt.compute_bytes += tuple_bytes;
          if (assignment_[p] == m) {
            result.stores[m]->Rel(p, rel).AppendRaw(chunk.TupleAt(i), 1);
          } else {
            stage[m][static_cast<size_t>(p) * num_relations + rel].AppendRaw(
                chunk.TupleAt(i), 1);
            staged_bytes += tuple_bytes;
          }
        }
      }
    }
    RDMAJOIN_RETURN_IF_ERROR(reservations[m]->Add(virt(staged_bytes)));
    // Register every non-empty staging region with the machine's device; the
    // pull design pays its registration cost on the sender side, where the
    // one-sided WRITE design pays it on the receiver.
    stage_mrs[m].resize(stage[m].size());
    for (size_t s = 0; s < stage[m].size(); ++s) {
      Relation& region = stage[m][s];
      if (region.empty()) continue;
      auto mr = net.device(m)->RegisterMemory(region.data(), region.size_bytes());
      RDMAJOIN_RETURN_IF_ERROR(mr.status());
      stage_mrs[m][s] = *mr;
      mt.setup_registration_seconds +=
          cluster_.costs.RegistrationSeconds(virt(region.size_bytes()));
    }
  }

  // ---- Stage 2: every destination pulls its partitions in chunks. ----
  const uint64_t payload_capacity = config_.ActualRdmaBufferBytes(tuple_bytes);
  const uint64_t chunk_bytes =
      std::max<uint64_t>(payload_capacity / tuple_bytes, 1) * tuple_bytes;
  for (uint32_t d = 0; d < nm; ++d) {
    MachineTrace& mt = trace->machines[d];
    RegisteredBufferPool pool(net.device(d), chunk_bytes,
                              config_.preregister_buffers
                                  ? RegisteredBufferPool::Policy::kPooled
                                  : RegisteredBufferPool::Policy::kRegisterOnDemand);
    uint32_t next_thread = 0;
    for (uint32_t p = 0; p < parts; ++p) {
      if (assignment_[p] != d) continue;
      // Assigned partitions are dealt round-robin to the pulling threads.
      ThreadNetTrace& tt = mt.net_threads[next_thread];
      next_thread = (next_thread + 1) % threads;
      for (uint32_t rel = 0; rel < num_relations; ++rel) {
        for (uint32_t s = 0; s < nm; ++s) {
          if (s == d) continue;
          const size_t idx = static_cast<size_t>(p) * num_relations + rel;
          const Relation& region = stage[s][idx];
          if (region.empty()) continue;
          const MemoryRegion& mr = stage_mrs[s][idx];
          for (uint64_t off = 0; off < region.size_bytes(); off += chunk_bytes) {
            const uint64_t len = std::min(chunk_bytes, region.size_bytes() - off);
            auto buf = pool.Acquire();
            RDMAJOIN_RETURN_IF_ERROR(buf.status());
            const Status read_posted = net.reader_qp(d, s)->PostRead(
                /*wr_id=*/0, (*buf)->mr.lkey, /*local_offset=*/0, mr.rkey, off,
                len);
            if (!read_posted.ok()) {
              // Same contract as the missing-completion path below: the
              // chunk buffer goes back to the pool before the abort.
              // lint: discard-ok(buffer return on abort path; original status propagates)
              (void)pool.Release(*buf);
              return read_posted;
            }
            WorkCompletion wc;
            if (!net.reader_cq(d, s)->PollOne(&wc) || !wc.success) {
              // lint: discard-ok(buffer return on abort path; Internal status propagates)
              (void)pool.Release(*buf);
              return Status::Internal("missing read completion");
            }
            result.stores[d]->Deliver(p, rel, (*buf)->bytes(), len);
            RDMAJOIN_RETURN_IF_ERROR(pool.Release(*buf));
            SendRecord read;
            read.dst_machine = d;
            read.slot = p;
            read.wire_bytes = len;
            read.compute_bytes_before = tt.compute_bytes;
            read.src_machine = s;
            tt.sends.push_back(read);
          }
        }
      }
    }
    result.pool_buffers_created += pool.buffers_created();
    result.pool_acquisitions += pool.acquisitions();
  }

  for (uint32_t m = 0; m < nm; ++m) {
    for (const auto& tt : trace->machines[m].net_threads) {
      for (const auto& send : tt.sends) {
        result.virtual_wire_bytes += static_cast<double>(send.wire_bytes) * scale;
      }
      result.messages_sent += tt.sends.size();
    }
    result.max_setup_registration_seconds =
        std::max(result.max_setup_registration_seconds,
                 trace->machines[m].setup_registration_seconds);
  }
  return result;
}

}  // namespace rdmajoin
