#ifndef RDMAJOIN_JOIN_HISTOGRAM_H_
#define RDMAJOIN_JOIN_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "workload/relation.h"

namespace rdmajoin {

/// Histograms of one relation over the 2^radix_bits first-pass partitions
/// (Section 4.1). Thread-level histograms are combined into machine-level
/// histograms, which are exchanged and summed into the global histogram that
/// sizes receive buffers and drives the partition-to-machine assignment.
struct RelationHistograms {
  uint32_t radix_bits = 0;
  /// per_machine[m][p]: tuples of partition p residing on machine m.
  std::vector<std::vector<uint64_t>> per_machine;
  /// global[p]: total tuples of partition p (sum over machines).
  std::vector<uint64_t> global;

  uint32_t num_partitions() const { return uint32_t{1} << radix_bits; }
  uint64_t total_tuples() const {
    uint64_t n = 0;
    for (uint64_t c : global) n += c;
    return n;
  }
};

/// First-pass partition of a key: its low `radix_bits` bits.
inline uint32_t FirstPassPartition(uint64_t key, uint32_t radix_bits) {
  return static_cast<uint32_t>(key & ((uint64_t{1} << radix_bits) - 1));
}

/// Scans every machine's chunk and produces the combined histograms.
RelationHistograms ComputeHistograms(const DistributedRelation& rel,
                                     uint32_t radix_bits);

/// Generalized histogram over an arbitrary partition function (used by the
/// range-partitioned sort-merge operator). Returns per-machine and global
/// counts as vectors indexed by partition.
struct GenericHistograms {
  std::vector<std::vector<uint64_t>> per_machine;  // [machine][partition]
  std::vector<uint64_t> global;                    // [partition]
};
class Partitioner;
GenericHistograms ComputeHistogramsWith(const DistributedRelation& rel,
                                        const Partitioner& partitioner);

}  // namespace rdmajoin

#endif  // RDMAJOIN_JOIN_HISTOGRAM_H_
