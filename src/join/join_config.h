#ifndef RDMAJOIN_JOIN_JOIN_CONFIG_H_
#define RDMAJOIN_JOIN_JOIN_CONFIG_H_

#include <cstdint>

#include "util/status.h"

namespace rdmajoin {

class FaultInjector;
class MetricsRegistry;
class ProtocolValidator;
class SpanRecorder;

/// What the join does when a runtime fault (src/fault/) defeats the
/// transport's bounded retry, or when retries are not wanted at all.
enum class FaultPolicy {
  /// Abort the pass with a clean Status error on the first failed send --
  /// never report partial results as success.
  kAbort,
  /// Recover: re-post timed-out or error-completed sends (after cycling the
  /// queue pair back to ready) up to max_send_retries times with exponential
  /// backoff; abort only when the retry budget is exhausted. Stragglers are
  /// additionally absorbed by the existing skew-split / work-stealing path.
  kRecover,
};

/// How first-pass partitions are assigned to machines (Section 4.1).
enum class AssignmentPolicy {
  /// Static: partition p goes to machine p mod NM.
  kRoundRobin,
  /// Dynamic: partitions are sorted by element count in decreasing order and
  /// dealt round-robin, so the largest partitions land on distinct machines
  /// (the paper's skew configuration, Section 6.5).
  kSkewAware,
};

/// Algorithm parameters of the distributed radix hash join. Byte quantities
/// are full-scale (paper units); the executor derives actual sizes through
/// `scale_up`.
struct JoinConfig {
  /// b1: the network pass fans out into 2^network_radix_bits partitions.
  /// The paper uses 10 (and another 10 in the local pass, Section 6.4.3).
  uint32_t network_radix_bits = 10;
  /// Target size of the final cache-resident partitions (full-scale bytes).
  uint64_t cache_partition_bytes = 32 * 1024;
  AssignmentPolicy assignment = AssignmentPolicy::kRoundRobin;
  /// Probe ranges larger than this factor times the average task size are
  /// split across threads (Section 4.3); 0 disables splitting.
  double skew_split_factor = 2.0;
  /// Size of one RDMA-enabled buffer, full-scale bytes (64 KB, Section 6.2).
  uint64_t rdma_buffer_bytes = 64 * 1024;
  /// RDMA buffers per (thread, remote partition); >= 2 enables interleaving
  /// of computation and communication (Section 4.2.1).
  uint32_t buffers_per_partition = 2;
  /// Two-sided receives pre-posted per incoming link.
  uint32_t recv_buffers_per_link = 8;
  /// Draw send buffers from a preregistered pool (the paper's design) or
  /// register each buffer on the fly (ablation: bench/abl_registration).
  bool preregister_buffers = true;
  /// Virtual bytes = actual bytes * scale_up. The workload generator is fed
  /// paper_tuples / scale_up tuples; the timing replay reports full-scale
  /// seconds. RDMA buffer and cache-partition actual sizes scale identically
  /// so buffer-fill dynamics match the full-scale run.
  double scale_up = 1.0;
  /// Local (non-network) partitioning passes charged in virtual time; the
  /// paper's two-pass configuration charges 1. If the scaled execution
  /// needs more passes than this, the executed passes are charged instead.
  uint32_t num_local_passes = 1;
  /// Maximum radix bits per local partitioning pass: 2^bits simultaneous
  /// output streams must not exceed the TLB/cache-line budget (Section 3.1,
  /// radix clustering). The paper's configuration uses 10.
  uint32_t local_bits_per_pass = 10;
  /// Materialize the join result: collect the matching <inner_rid,
  /// outer_rid> pairs and charge the output writes (16 bytes per match at
  /// memcpy speed) to the build/probe phase. The paper's evaluated setting
  /// leaves the result in the operator pipeline (Section 7) -- off by
  /// default.
  bool materialize_results = false;
  /// Inter-machine work stealing in the build/probe phase: the extension the
  /// paper proposes for skewed workloads (Sections 6.5, 8). Whole tasks
  /// (a hash table plus its probe range) migrate from overloaded machines to
  /// underloaded ones; the shipped partition data is charged against the
  /// receiving machine's port bandwidth.
  bool enable_work_stealing = false;
  /// Optional verbs-contract checker (rdma/validator.h). When set, every
  /// RDMA device, queue pair, completion queue, and buffer pool the executor
  /// creates reports protocol violations into it; completion queues are
  /// additionally bounded so overruns become detectable. Must outlive the
  /// run. Null (the default) disables checking.
  ProtocolValidator* validator = nullptr;
  /// Optional observability registry (util/metrics.h). When set, every RDMA
  /// device records work-request, registration and buffer-pool metrics under
  /// "rdma.dev<m>.", the timing replay records per-host fabric utilization
  /// under "fabric." and per-machine phase gauges under "join.". Must
  /// outlive the run. Null (the default) disables metrics.
  MetricsRegistry* metrics = nullptr;
  /// Causal span tracing (timing/span_trace.h). On by default: the timing
  /// replay records a lifecycle span per posted send and per-flow fabric
  /// rate segments into a byte-bounded flight recorder, published as
  /// ReplayReport::spans. Recording is passive and never changes replayed
  /// times; set false to switch the recorder off entirely.
  bool enable_spans = true;
  /// Byte budget of the span flight recorder; 0 keeps the recorder default
  /// (SpanConfig::max_bytes, 8 MiB).
  uint64_t span_budget_bytes = 0;
  /// Optional external span recorder. When set (and enabled), the replay
  /// records into it instead of creating its own, so execution-layer verbs
  /// counts and replay-time spans land in one dataset. Must outlive the run;
  /// overrides enable_spans / span_budget_bytes.
  SpanRecorder* span_recorder = nullptr;
  /// Optional deterministic fault injector (src/fault/). When set and
  /// active, the execution layer injects the scheduled QP faults into the
  /// transport send path and the timing replay applies the scheduled link /
  /// straggler / credit windows. Must outlive the run. Null (the default)
  /// or an empty schedule leaves every output byte-identical to a run
  /// without the injector.
  const FaultInjector* fault_injector = nullptr;
  /// Reaction to runtime faults; see FaultPolicy.
  FaultPolicy fault_policy = FaultPolicy::kAbort;
  /// kRecover: send attempts beyond the first before giving up.
  uint32_t max_send_retries = 4;
  /// kRecover: backoff before retry i is retry_backoff_seconds * 2^i of
  /// virtual time, charged to the fault_recovery attribution bucket.
  double retry_backoff_seconds = 2e-6;
  /// Virtual seconds a sender waits for a missing completion before
  /// declaring the send lost (timeout path of dropped messages).
  double send_timeout_seconds = 1e-4;

  Status Validate() const;

  /// Actual in-simulation payload capacity of one RDMA buffer (the wire
  /// header is allocated on top); at least one tuple fits.
  uint64_t ActualRdmaBufferBytes(uint32_t tuple_bytes) const;
  /// Actual target size of final partitions (>= one tuple).
  uint64_t ActualCachePartitionBytes(uint32_t tuple_bytes) const;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_JOIN_JOIN_CONFIG_H_
