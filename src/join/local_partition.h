#ifndef RDMAJOIN_JOIN_LOCAL_PARTITION_H_
#define RDMAJOIN_JOIN_LOCAL_PARTITION_H_

#include <cstdint>
#include <vector>

#include "workload/relation.h"

namespace rdmajoin {

/// One radix-partitioning pass over a relation: scatters tuples into
/// 2^bits output partitions keyed on key bits [shift, shift+bits). This is
/// the histogram + prefix-sum + scatter kernel shared by the local passes of
/// the distributed join and by the single-machine baseline.
std::vector<Relation> RadixScatter(const Relation& in, uint32_t shift, uint32_t bits);

/// Radix bits needed so that partitioning `max_partition_bytes` into equal
/// chunks yields chunks of at most `target_bytes` (capped at `max_bits`).
uint32_t BitsForTarget(uint64_t max_partition_bytes, uint64_t target_bytes,
                       uint32_t max_bits = 14);

/// Multi-pass radix partitioning (Section 3.1): fans `in` out over `bits`
/// radix bits starting at `shift`, but creates at most 2^`bits_per_pass`
/// partitions per pass so the number of simultaneously written output
/// streams never exceeds the TLB/cache-line budget (Manegold et al.'s
/// radix-clustering). Returns the 2^bits final partitions in radix order and
/// sets `*passes` (if non-null) to the number of passes executed and
/// `*bytes_processed` to the total bytes moved (bytes * passes).
std::vector<Relation> RadixScatterMultiPass(const Relation& in, uint32_t shift,
                                            uint32_t bits, uint32_t bits_per_pass,
                                            uint32_t* passes = nullptr,
                                            uint64_t* bytes_processed = nullptr);

}  // namespace rdmajoin

#endif  // RDMAJOIN_JOIN_LOCAL_PARTITION_H_
