#ifndef RDMAJOIN_JOIN_RESULT_STATS_H_
#define RDMAJOIN_JOIN_RESULT_STATS_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace rdmajoin {

/// Aggregated join output. The evaluated workloads have exact expected
/// values for all three checksum fields (see GroundTruth), so every run is
/// verified end to end.
struct JoinResultStats {
  uint64_t matches = 0;
  /// Sum (mod 2^64) of the join key over all matches.
  uint64_t key_sum = 0;
  /// Sum (mod 2^64) of the inner-relation rid over all matches.
  uint64_t inner_rid_sum = 0;
  /// Matching (inner_rid, outer_rid) pairs; only collected when requested.
  std::vector<std::pair<uint64_t, uint64_t>> pairs;

  void Count(uint64_t key, uint64_t inner_rid) {
    ++matches;
    key_sum += key;
    inner_rid_sum += inner_rid;
  }
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_JOIN_RESULT_STATS_H_
