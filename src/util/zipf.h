#ifndef RDMAJOIN_UTIL_ZIPF_H_
#define RDMAJOIN_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace rdmajoin {

/// Samples ranks from a Zipf distribution with exponent `theta` over the
/// domain [0, n): P(rank = k) proportional to 1 / (k+1)^theta.
///
/// The paper's skew experiments (Section 6.5) populate the foreign-key column
/// of the outer relation with Zipf factors 1.05 (low skew) and 1.20 (high
/// skew). Sampling uses an inverse-CDF lookup over a precomputed prefix-sum
/// table with binary search, which is exact and fast enough for the scaled
/// workload sizes used in the benchmarks.
class ZipfGenerator {
 public:
  /// Builds the CDF for domain size `n` (> 0) and exponent `theta` (> 0).
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  /// Returns a rank in [0, n); rank 0 is the most frequent.
  uint64_t Next();

  uint64_t domain_size() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  Random rng_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), normalized, size n_.
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_ZIPF_H_
