#ifndef RDMAJOIN_UTIL_ZIPF_H_
#define RDMAJOIN_UTIL_ZIPF_H_

#include <cstdint>

#include "util/random.h"

namespace rdmajoin {

/// Samples ranks from a Zipf distribution with exponent `theta` over the
/// domain [0, n): P(rank = k) proportional to 1 / (k+1)^theta.
///
/// The paper's skew experiments (Section 6.5) populate the foreign-key column
/// of the outer relation with Zipf factors 1.05 (low skew) and 1.20 (high
/// skew); the Fig. 8 sweep also needs the uniform end (theta = 0). Sampling
/// uses rejection-inversion (Hoermann & Derflinger, "Rejection-inversion to
/// generate variates from monotone discrete distributions", 1996): the
/// discrete probabilities are dominated by an invertible continuous envelope,
/// so drawing is exact, O(1) per sample with O(1) state -- no O(n) CDF table,
/// which for the paper's 2B-key relations would cost 16 GB.
class ZipfGenerator {
 public:
  /// Domain size `n` (> 0) and exponent `theta` (>= 0; 0 is uniform).
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  /// Returns a rank in [0, n); rank 0 is the most frequent.
  uint64_t Next();

  uint64_t domain_size() const { return n_; }
  double theta() const { return theta_; }

 private:
  /// Integral of the envelope hazard h(x) = x^-theta:
  /// H(x) = (x^(1-theta) - 1) / (1 - theta), or ln(x) when theta == 1.
  double HIntegral(double x) const;
  /// Inverse of HIntegral.
  double HIntegralInverse(double x) const;

  uint64_t n_;
  double theta_;
  Random rng_;
  // Precomputed sampler constants (Hoermann & Derflinger eq. 8/18).
  double h_integral_x1_;         // H(1.5) - 1
  double h_integral_n_;          // H(n + 0.5)
  double s_;                     // acceptance shortcut threshold
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_ZIPF_H_
