#ifndef RDMAJOIN_UTIL_STATUSOR_H_
#define RDMAJOIN_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace rdmajoin {

/// Holds either a value of type T or an error Status. Mirrors
/// absl::StatusOr<T> for the subset of the interface this library needs.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  /// Constructs from a value; the resulting StatusOr is OK.
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors require ok(); checked with assert in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a StatusOr expression to `lhs`, or propagates its
/// error status to the caller.
#define RDMAJOIN_ASSIGN_OR_RETURN(lhs, expr)        \
  auto RDMAJOIN_CONCAT_(_sor_, __LINE__) = (expr);  \
  if (!RDMAJOIN_CONCAT_(_sor_, __LINE__).ok())      \
    return RDMAJOIN_CONCAT_(_sor_, __LINE__).status(); \
  lhs = std::move(RDMAJOIN_CONCAT_(_sor_, __LINE__)).value()

#define RDMAJOIN_CONCAT_IMPL_(a, b) a##b
#define RDMAJOIN_CONCAT_(a, b) RDMAJOIN_CONCAT_IMPL_(a, b)

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_STATUSOR_H_
