#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rdmajoin {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  out->append(s);  // Metric names contain no characters needing escapes.
  out->push_back('"');
}

}  // namespace

void Histogram::Observe(double v) {
  if (v < 0 || std::isnan(v)) return;
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++count_;
  sum_ += v;
  size_t b = 0;
  // Bucket i holds samples in (2^(i-1), 2^i].
  while (b + 1 < kBuckets && v > static_cast<double>(uint64_t{1} << b)) ++b;
  ++buckets_[b];
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0) return min();
  if (p >= 100) return max_;
  const double target = std::ceil(p / 100.0 * static_cast<double>(count_));
  const uint64_t rank = target < 1 ? 1 : static_cast<uint64_t>(target);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      const double upper = static_cast<double>(uint64_t{1} << b);
      return std::clamp(upper, min(), max_);
    }
  }
  return max_;
}

size_t TimeSeries::BucketFor(double t) {
  if (t < 0) t = 0;
  size_t index = static_cast<size_t>(t / bucket_seconds_);
  while (index >= max_buckets_) {
    // Coarsen: double the width, fold adjacent buckets together.
    const size_t folded = (buckets_.size() + 1) / 2;
    for (size_t i = 0; i < folded; ++i) {
      double v = buckets_[2 * i];
      if (2 * i + 1 < buckets_.size()) v += buckets_[2 * i + 1];
      buckets_[i] = v;
    }
    buckets_.resize(folded);
    bucket_seconds_ *= 2;
    index = static_cast<size_t>(t / bucket_seconds_);
  }
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0.0);
  return index;
}

void TimeSeries::Add(double t, double v) {
  buckets_[BucketFor(t)] += v;
  total_ += v;
}

void TimeSeries::AddRange(double t0, double t1, double total) {
  if (t0 < 0) t0 = 0;
  if (t1 <= t0) {
    Add(t0, total);
    return;
  }
  const double span = t1 - t0;
  // Walk bucket by bucket; BucketFor may coarsen mid-walk, so the loop
  // re-derives the bucket edge from the current width each step.
  double t = t0;
  while (t < t1) {
    const size_t b = BucketFor(t);
    const double edge = (static_cast<double>(b) + 1.0) * bucket_seconds_;
    const double upto = std::min(edge, t1);
    buckets_[b] += total * (upto - t) / span;
    if (upto <= t) break;  // Defensive: no progress (degenerate widths).
    t = upto;
  }
  total_ += total;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

TimeSeries* MetricsRegistry::GetTimeSeries(const std::string& name,
                                           double bucket_seconds) {
  auto& slot = time_series_[name];
  if (slot == nullptr) slot = std::make_unique<TimeSeries>(bucket_seconds);
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

const TimeSeries* MetricsRegistry::FindTimeSeries(const std::string& name) const {
  auto it = time_series_.find(name);
  return it == time_series_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::SnapshotJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    AppendQuoted(&out, name);
    out += ":";
    AppendDouble(&out, c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    AppendQuoted(&out, name);
    out += ":{\"value\":";
    AppendDouble(&out, g->value());
    out += ",\"max\":";
    AppendDouble(&out, g->max());
    out += "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    AppendQuoted(&out, name);
    out += ":{\"count\":";
    AppendDouble(&out, static_cast<double>(h->count()));
    out += ",\"sum\":";
    AppendDouble(&out, h->sum());
    out += ",\"min\":";
    AppendDouble(&out, h->min());
    out += ",\"max\":";
    AppendDouble(&out, h->max());
    out += ",\"p50\":";
    AppendDouble(&out, h->Percentile(50));
    out += ",\"p95\":";
    AppendDouble(&out, h->Percentile(95));
    out += ",\"p99\":";
    AppendDouble(&out, h->Percentile(99));
    out += ",\"buckets\":[";
    // [upper_bound, count] for non-empty buckets only.
    bool first_bucket = true;
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h->buckets()[b] == 0) continue;
      if (!first_bucket) out += ",";
      first_bucket = false;
      out += "[";
      AppendDouble(&out, static_cast<double>(uint64_t{1} << b));
      out += ",";
      AppendDouble(&out, static_cast<double>(h->buckets()[b]));
      out += "]";
    }
    out += "]}";
  }
  out += "},\"time_series\":{";
  first = true;
  for (const auto& [name, ts] : time_series_) {
    if (!first) out += ",";
    first = false;
    AppendQuoted(&out, name);
    out += ":{\"bucket_seconds\":";
    AppendDouble(&out, ts->bucket_seconds());
    out += ",\"total\":";
    AppendDouble(&out, ts->total());
    out += ",\"buckets\":[";
    const std::vector<double>& buckets = ts->buckets();
    for (size_t b = 0; b < buckets.size(); ++b) {
      if (b > 0) out += ",";
      AppendDouble(&out, buckets[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace rdmajoin
