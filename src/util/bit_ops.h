#ifndef RDMAJOIN_UTIL_BIT_OPS_H_
#define RDMAJOIN_UTIL_BIT_OPS_H_

#include <bit>
#include <cstdint>

namespace rdmajoin {

/// Returns true iff `x` is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x must be >= 1).
constexpr uint64_t NextPowerOfTwo(uint64_t x) { return std::bit_ceil(x); }

/// Floor of log2(x); x must be > 0.
constexpr uint32_t Log2Floor(uint64_t x) {
  return 63u - static_cast<uint32_t>(std::countl_zero(x));
}

/// Ceiling of log2(x); x must be > 0.
constexpr uint32_t Log2Ceil(uint64_t x) {
  return x <= 1 ? 0 : Log2Floor(x - 1) + 1;
}

/// Extracts `bits` bits of `key` starting at bit `shift` (little-endian bit
/// numbering). This is the radix function of the join: pass i of a multi-pass
/// radix partitioning uses a disjoint (shift, bits) window of the key.
constexpr uint64_t RadixBits(uint64_t key, uint32_t shift, uint32_t bits) {
  return (key >> shift) & ((uint64_t{1} << bits) - 1);
}

/// Integer division rounding up.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Multiplicative 64-bit hash (Fibonacci hashing) used by the bucket-chained
/// hash tables. Keys in the workloads are dense integers; the multiplication
/// spreads them across buckets regardless of density.
constexpr uint64_t HashKey(uint64_t key) {
  return key * UINT64_C(0x9E3779B97F4A7C15);
}

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_BIT_OPS_H_
