#ifndef RDMAJOIN_UTIL_LEDGER_H_
#define RDMAJOIN_UTIL_LEDGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bench_json.h"
#include "util/statusor.h"

namespace rdmajoin {

/// The longitudinal perf ledger: one JSONL file (bench/ledger/ledger.jsonl)
/// accumulating a compact summary row per bench run per commit, appended by
/// `rdmajoin_explain --ledger-append` in CI. Unlike the per-run BENCH_*.json
/// artifacts (discarded after each gate), the ledger is committed history:
/// it renders trends and detects drift -- a slow creep that stays inside the
/// per-run gate's tolerance every time but compounds across commits.
inline constexpr int kLedgerSchemaVersion = 1;

/// One measured row of one bench run.
struct LedgerRow {
  std::string label;
  double seconds = 0;
};

/// Dominant binding constraint of one phase of a run, as reported by the
/// span recorder's forensics (timing/span_query.h). Stored by name
/// ("egress", "ingress", "msg_rate", ...) so the ledger layer stays below
/// the timing layer in the dependency DAG; the ledger only threads the
/// strings through and renders the flips.
struct LedgerPhaseConstraint {
  std::string phase;
  std::string bound;
};

/// One ledger line: the summary of one bench run at one commit. Everything
/// except `commit` is deterministic for a fixed (bench, scale, seed, code).
struct LedgerEntry {
  int schema_version = kLedgerSchemaVersion;
  std::string bench;
  /// Git commit id (or any build tag); "unknown" when not supplied.
  std::string commit = "unknown";
  double scale_up = 0;
  uint64_t seed = 0;
  /// Sum of the measured rows' virtual seconds.
  double total_seconds = 0;
  std::vector<LedgerRow> rows;
  /// Optional per-phase dominant binding constraints (filled by callers that
  /// have a span dataset, e.g. `rdmajoin_explain --ledger-append --spans=`).
  /// Serialized only when non-empty, so entries without forensics -- and the
  /// committed ledger history -- keep their exact bytes.
  std::vector<LedgerPhaseConstraint> phase_constraints;
};

/// Summarizes a parsed bench document into a ledger entry.
LedgerEntry LedgerEntryFromBench(const BenchJsonDocument& bench,
                                 const std::string& commit);

/// One deterministic JSON line (no trailing newline).
std::string LedgerEntryToJson(const LedgerEntry& entry);

/// Parses one ledger line. Rejects unknown schema versions and entries
/// without a bench name.
StatusOr<LedgerEntry> ParseLedgerEntry(const std::string& line);

/// Reads a JSONL ledger file (blank lines skipped). A missing file is an
/// empty ledger, not an error -- the first append creates it.
StatusOr<std::vector<LedgerEntry>> ReadLedgerFile(const std::string& path);

/// Appends one entry (creating the file and parent use is the caller's
/// concern -- the CI step runs from the repo root where bench/ledger/
/// exists).
Status AppendLedgerEntry(const std::string& path, const LedgerEntry& entry);

/// One (bench, label) series' drift verdict: the latest measurement against
/// the median of all prior ones.
struct LedgerDrift {
  std::string bench;
  std::string label;
  size_t points = 0;      ///< series length including the latest
  double median = 0;      ///< median of the prior points
  double latest = 0;
  double delta = 0;       ///< latest - median
  bool drift = false;     ///< |delta| beyond both margins
};

/// Drift detection over a ledger: per (bench, label) series in first-seen
/// order, compares the latest point to the median of the prior points with
/// the same two-sided margins as the bench gate. Series with fewer than
/// `min_points` entries are reported with drift=false (not enough history).
std::vector<LedgerDrift> DetectLedgerDrift(const std::vector<LedgerEntry>& ledger,
                                           double relative_tolerance = 0.05,
                                           double absolute_tolerance_seconds = 0.02,
                                           size_t min_points = 3);

/// Trend rendering: per bench and label, the series' history as an ASCII
/// sparkline (min..max normalized) with first/median/latest values and the
/// drift verdict. `bench_filter` non-empty limits output to one bench.
std::string FormatLedger(const std::vector<LedgerEntry>& ledger,
                         const std::string& bench_filter = "",
                         double relative_tolerance = 0.05,
                         double absolute_tolerance_seconds = 0.02);

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_LEDGER_H_
