#ifndef RDMAJOIN_UTIL_BENCH_JSON_H_
#define RDMAJOIN_UTIL_BENCH_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/statusor.h"

namespace rdmajoin {

/// The machine-readable bench result schema (`BENCH_<name>.json`) that every
/// fig/abl/ext harness emits through bench::BenchReporter, and that
/// tools/rdmajoin_analyze renders and diffs. Version history:
///   1 -- initial: bench/scale_up/seed header plus rows of
///        {label, config, measured/paper/model seconds, phases, attribution,
///         model residuals, protocol violations}.
inline constexpr int kBenchJsonSchemaVersion = 1;

/// One data point of a bench run (one table row / figure point).
struct BenchJsonRow {
  std::string label;
  bool ok = false;
  bool verified = false;
  std::string error;
  /// Total virtual seconds; NaN when the row did not produce a measurement.
  double measured_seconds = 0;
  bool has_measured = false;
  /// The paper's reference value for this point, when the figure states one.
  double paper_seconds = 0;
  bool has_paper = false;
  /// Closed-form model prediction and residual (fig09-style rows).
  double model_seconds = 0;
  bool has_model = false;
  double residual_seconds = 0;
  uint64_t protocol_violations = 0;
  /// The row's full JSON object, for consumers that want phases,
  /// attribution, or config details beyond the typed fields above.
  JsonValue raw;
};

/// A parsed BENCH_*.json document.
struct BenchJsonDocument {
  int schema_version = 0;
  std::string bench;
  double scale_up = 0;
  uint64_t seed = 0;
  std::vector<BenchJsonRow> rows;

  const BenchJsonRow* FindRow(const std::string& label) const;
};

/// Parses and structurally validates a bench JSON document. Rejects unknown
/// schema versions and rows without labels.
StatusOr<BenchJsonDocument> ParseBenchJson(const std::string& json);

/// Convenience: read + parse a file.
StatusOr<BenchJsonDocument> ReadBenchJsonFile(const std::string& path);

/// Regression-gate tolerances. A row regresses when the new measurement
/// exceeds the old by BOTH margins -- the relative guard absorbs
/// platform/FP noise proportional to the runtime, the absolute guard keeps
/// micro-rows (milliseconds) from tripping on rounding.
struct BenchDiffOptions {
  double relative_tolerance = 0.05;
  double absolute_tolerance_seconds = 0.02;
  /// Also fail when a measured row disappears or stops being ok/verified in
  /// the new document (on by default: silently dropping a slow point must
  /// not pass the gate).
  bool require_all_baseline_rows = true;
};

/// One row's comparison.
struct BenchDiffEntry {
  std::string label;
  double old_seconds = 0;
  double new_seconds = 0;
  double delta_seconds = 0;   // new - old
  double ratio = 0;           // new / old (0 when old == 0)
  bool regression = false;
  bool improvement = false;   // faster by more than the same margins
  bool missing_in_new = false;
};

struct BenchDiffResult {
  std::vector<BenchDiffEntry> entries;
  size_t regressions = 0;
  size_t improvements = 0;
  size_t missing = 0;
  bool HasRegressions() const { return regressions > 0 || missing > 0; }
  /// Human-readable comparison table plus verdict line. With
  /// `report_improvements` the summary appends a dedicated speedups section
  /// (per-row gain and the total saved), so intentional wins are visible in
  /// CI logs -- purely informational, the gate verdict is unchanged.
  std::string Summary(bool report_improvements = false) const;
};

/// Diffs two bench documents row by row (matched on label). Fails with
/// InvalidArgument when the documents are not comparable: different bench
/// names, schema versions, scale factors, or seeds -- CI must compare
/// like for like.
StatusOr<BenchDiffResult> DiffBenchDocuments(const BenchJsonDocument& baseline,
                                             const BenchJsonDocument& current,
                                             const BenchDiffOptions& options);

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_BENCH_JSON_H_
