#ifndef RDMAJOIN_UTIL_METRICS_H_
#define RDMAJOIN_UTIL_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rdmajoin {

/// Observability primitives for the simulator's hot paths.
///
/// The paper's analysis lives and dies on knowing where time and bytes go --
/// per-phase breakdowns (Fig. 7), bandwidth over message size (Fig. 3), the
/// CPU-bound/network-bound crossover -- so the rdma, sim and join layers all
/// report into one MetricsRegistry. Handles are plain pointers resolved once
/// (by name) and then updated with a single add/compare; there is no locking
/// because the simulation is single-threaded, and no string work on the hot
/// path. A registry snapshot serializes to JSON (docs/observability.md) and
/// feeds the Chrome-trace exporter (timing/chrome_trace.h).

/// Monotonically increasing sum. Stored as a double so byte totals from the
/// fluid-flow fabric (which works in double bytes) are represented exactly;
/// integral counts are exact up to 2^53.
class Counter {
 public:
  void Add(double delta) { value_ += delta; }
  void Increment() { value_ += 1.0; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Instantaneous level plus its high-water mark (e.g. buffer-pool occupancy,
/// concurrent flow count).
class Gauge {
 public:
  void Set(double v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void Add(double delta) { Set(value_ + delta); }
  double value() const { return value_; }
  double max() const { return max_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
};

/// Power-of-two bucketed histogram of non-negative samples (message sizes,
/// task durations). Bucket i counts samples in (2^(i-1), 2^i]; bucket 0
/// counts samples <= 1.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Smallest / largest observed sample; 0 when empty.
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return max_; }
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

  /// Nearest-rank percentile (p in [0, 100]) over the bucketed population:
  /// the upper bound of the bucket holding the ceil(p/100 * count)-th sample,
  /// clamped to [min, max] so single-sample and narrow distributions report
  /// observed values rather than power-of-two bounds. 0 when empty. The
  /// resolution is the bucket width (a factor of 2), same as the buckets the
  /// snapshot exports -- use span_query's exact percentiles when the raw
  /// population is available.
  double Percentile(double p) const;

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<uint64_t, kBuckets> buckets_{};
};

/// Accumulates a quantity over virtual time into fixed-width buckets
/// (bucket b covers [b * bucket_seconds, (b+1) * bucket_seconds)). Used for
/// per-host egress/ingress activity timelines. When a run outlives
/// max_buckets, the series coarsens itself: the bucket width doubles and
/// adjacent buckets fold together, so memory stays bounded no matter how
/// long the simulated run is.
class TimeSeries {
 public:
  explicit TimeSeries(double bucket_seconds, size_t max_buckets = 4096)
      : bucket_seconds_(bucket_seconds), max_buckets_(max_buckets) {}

  /// Adds `v` at time `t` (>= 0).
  void Add(double t, double v);
  /// Distributes `total` uniformly over [t0, t1); a zero-length interval
  /// degenerates to Add(t0, total).
  void AddRange(double t0, double t1, double total);

  double bucket_seconds() const { return bucket_seconds_; }
  const std::vector<double>& buckets() const { return buckets_; }
  double total() const { return total_; }

 private:
  /// Grows (and, past max_buckets_, coarsens) until `index` for time `t` fits.
  size_t BucketFor(double t);

  double bucket_seconds_;
  size_t max_buckets_;
  std::vector<double> buckets_;
  double total_ = 0.0;
};

/// Owner of all metrics, keyed by name. Get* creates on first use and
/// returns a pointer that stays valid for the registry's lifetime; Find*
/// looks up without creating (nullptr when absent). Names are hierarchical
/// by convention: "<layer>.<object>.<quantity>", e.g.
/// "fabric.host3.egress_bytes" or "rdma.dev0.send_posted".
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  /// `bucket_seconds` applies only on first creation.
  TimeSeries* GetTimeSeries(const std::string& name, double bucket_seconds);

  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;
  const TimeSeries* FindTimeSeries(const std::string& name) const;

  const std::map<std::string, std::unique_ptr<TimeSeries>>& time_series() const {
    return time_series_;
  }

  /// Serializes every metric to one JSON document (schema documented in
  /// docs/observability.md). Deterministic: keys are emitted in sorted order
  /// and numbers in a fixed format, so identical-seed reruns produce
  /// byte-identical snapshots and snapshots diff cleanly.
  std::string SnapshotJson() const;
  /// Older name for SnapshotJson().
  std::string ToJson() const { return SnapshotJson(); }

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<TimeSeries>> time_series_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_METRICS_H_
