#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rdmajoin {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    JsonValue value;
    RDMAJOIN_RETURN_IF_ERROR(ParseValue(&value, /*depth=*/0));
    SkipSpace();
    if (pos_ < text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        if (ConsumeLiteral("true")) {
          out->kind = JsonValue::Kind::kBool;
          out->bool_value = true;
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          out->kind = JsonValue::Kind::kBool;
          out->bool_value = false;
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          out->kind = JsonValue::Kind::kNull;
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      RDMAJOIN_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Error("expected ':'");
      ++pos_;
      JsonValue value;
      RDMAJOIN_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object_members.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      RDMAJOIN_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array_items.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            RDMAJOIN_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
            AppendUtf8(out, cp);
            break;
          }
          default:
            return Error("invalid escape");
        }
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  StatusOr<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Error("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value : fallback;
}

bool JsonValue::BoolOr(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->kind == Kind::kBool) ? v->bool_value : fallback;
}

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).ParseDocument();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\b': out.append("\\b"); break;
      case '\f': out.append("\\f"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

}  // namespace rdmajoin
