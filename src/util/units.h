#ifndef RDMAJOIN_UTIL_UNITS_H_
#define RDMAJOIN_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace rdmajoin {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

/// The paper quotes rates in decimal megabytes per second (e.g. 955 MB/s,
/// 3400 MB/s); these constants convert between those units and bytes/seconds.
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

/// One million tuples -- the paper sizes relations as "2048 million tuples".
inline constexpr uint64_t kMillionTuples = 1000 * 1000;

/// Formats a byte count with a binary-unit suffix ("64 KiB", "1.5 GiB").
std::string FormatBytes(uint64_t bytes);

/// Formats seconds with millisecond precision ("5.754 s").
std::string FormatSeconds(double seconds);

/// Formats a rate in MB/s (decimal).
std::string FormatRateMBps(double bytes_per_second);

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_UNITS_H_
