#ifndef RDMAJOIN_UTIL_FLAT_MAP_H_
#define RDMAJOIN_UTIL_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "util/arena.h"

namespace rdmajoin {

/// Open-addressing hash map from a non-zero integer key to a trivially
/// destructible value, tuned for the discrete-event hot loop: one flat
/// power-of-two slot array (arena-backed when an Arena is supplied, so
/// rehashes are pointer bumps instead of malloc/free), linear probing, and
/// backward-shift deletion -- no tombstones, no per-node allocation, no
/// iteration-order dependence anywhere in the API (there is deliberately no
/// iterator: the determinism contract bans order-sensitive traversal of hash
/// containers, and every simulator use is point lookup).
///
/// Key 0 is reserved as the empty-slot marker; the simulator's flow/message
/// ids start at 1 and its slot keys are stored shifted by one.
template <typename Key, typename Value>
class FlatMap {
  static_assert(std::is_unsigned_v<Key>, "FlatMap keys are unsigned integers");
  static_assert(std::is_trivially_destructible_v<Value>,
                "FlatMap values live in an arena and skip destructors");

 public:
  /// `arena` may be null (heap-backed via an internal arena then). The map
  /// keeps a pointer; the arena must outlive the map.
  explicit FlatMap(Arena* arena = nullptr, size_t initial_capacity = 64)
      : arena_(arena) {
    capacity_ = 16;
    while (capacity_ < initial_capacity) capacity_ <<= 1;
    slots_ = AllocateSlots(capacity_);
  }
  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;
  /// Moves leave `other` empty and unusable (destroy-only), which is what
  /// vector reallocation needs.
  FlatMap(FlatMap&& other) noexcept
      : arena_(other.arena_),
        owned_arena_(other.owned_arena_),
        slots_(other.slots_),
        capacity_(other.capacity_),
        size_(other.size_) {
    other.arena_ = nullptr;
    other.owned_arena_ = nullptr;
    other.slots_ = nullptr;
    other.capacity_ = 0;
    other.size_ = 0;
  }
  FlatMap& operator=(FlatMap&& other) noexcept {
    if (this != &other) {
      delete owned_arena_;
      arena_ = other.arena_;
      owned_arena_ = other.owned_arena_;
      slots_ = other.slots_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.arena_ = nullptr;
      other.owned_arena_ = nullptr;
      other.slots_ = nullptr;
      other.capacity_ = 0;
      other.size_ = 0;
    }
    return *this;
  }
  ~FlatMap() {
    delete owned_arena_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pointer to the value for `key`, or nullptr.
  Value* Find(Key key) {
    assert(key != 0 && "key 0 is the empty marker");
    size_t i = IndexFor(key);
    while (slots_[i].key != 0) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & (capacity_ - 1);
    }
    return nullptr;
  }
  const Value* Find(Key key) const {
    return const_cast<FlatMap*>(this)->Find(key);
  }

  /// Reference to the value for `key`, value-initialized when absent.
  Value& GetOrInsert(Key key) {
    assert(key != 0 && "key 0 is the empty marker");
    if ((size_ + 1) * 4 > capacity_ * 3) Grow();
    size_t i = IndexFor(key);
    while (slots_[i].key != 0) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & (capacity_ - 1);
    }
    slots_[i].key = key;
    slots_[i].value = Value();
    ++size_;
    return slots_[i].value;
  }

  /// Inserts or overwrites.
  void Put(Key key, const Value& value) { GetOrInsert(key) = value; }

  /// Removes `key` if present; returns whether it was. Backward-shift
  /// deletion keeps probe chains intact without tombstones.
  bool Erase(Key key) {
    assert(key != 0 && "key 0 is the empty marker");
    size_t i = IndexFor(key);
    while (slots_[i].key != key) {
      if (slots_[i].key == 0) return false;
      i = (i + 1) & (capacity_ - 1);
    }
    size_t hole = i;
    size_t j = i;
    while (true) {
      j = (j + 1) & (capacity_ - 1);
      if (slots_[j].key == 0) break;
      const size_t home = IndexFor(slots_[j].key);
      // Move j into the hole when its probe path crosses the hole.
      const bool wraps = hole <= j ? (home <= hole || home > j)
                                   : (home <= hole && home > j);
      if (wraps) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole].key = 0;
    --size_;
    return true;
  }

  /// Drops all entries, keeping the current slot array.
  void Clear() {
    for (size_t i = 0; i < capacity_; ++i) slots_[i].key = 0;
    size_ = 0;
  }

 private:
  struct Slot {
    Key key;
    Value value;
  };

  size_t IndexFor(Key key) const {
    // Fibonacci multiplicative hash; keys are dense sequential ids, so the
    // golden-ratio spread avoids the clustering identity hashing would give.
    const uint64_t h = static_cast<uint64_t>(key) * UINT64_C(0x9E3779B97F4A7C15);
    return static_cast<size_t>(h >> 32) & (capacity_ - 1);
  }

  Slot* AllocateSlots(size_t n) {
    if (arena_ == nullptr) {
      if (owned_arena_ == nullptr) owned_arena_ = new Arena();
      arena_ = owned_arena_;
    }
    Slot* s = arena_->AllocateRaw<Slot>(n);
    for (size_t i = 0; i < n; ++i) s[i].key = 0;
    return s;
  }

  void Grow() {
    Slot* old = slots_;
    const size_t old_cap = capacity_;
    capacity_ <<= 1;
    slots_ = AllocateSlots(capacity_);
    for (size_t i = 0; i < old_cap; ++i) {
      if (old[i].key == 0) continue;
      size_t j = IndexFor(old[i].key);
      while (slots_[j].key != 0) j = (j + 1) & (capacity_ - 1);
      slots_[j] = old[i];
    }
    // The old block stays in the arena until the arena dies (monotonic).
  }

  Arena* arena_ = nullptr;
  Arena* owned_arena_ = nullptr;
  Slot* slots_ = nullptr;
  size_t capacity_ = 0;
  size_t size_ = 0;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_FLAT_MAP_H_
