#include "util/bench_json.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace rdmajoin {

namespace {

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

}  // namespace

const BenchJsonRow* BenchJsonDocument::FindRow(const std::string& label) const {
  for (const BenchJsonRow& row : rows) {
    if (row.label == label) return &row;
  }
  return nullptr;
}

StatusOr<BenchJsonDocument> ParseBenchJson(const std::string& json) {
  RDMAJOIN_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (!root.is_object()) {
    return Status::InvalidArgument("bench JSON: top level is not an object");
  }
  BenchJsonDocument doc;
  doc.schema_version = static_cast<int>(root.NumberOr("schema_version", 0));
  if (doc.schema_version != kBenchJsonSchemaVersion) {
    return Status::InvalidArgument(
        "bench JSON: unsupported schema_version " +
        std::to_string(doc.schema_version) + " (expected " +
        std::to_string(kBenchJsonSchemaVersion) + ")");
  }
  doc.bench = root.StringOr("bench", "");
  if (doc.bench.empty()) {
    return Status::InvalidArgument("bench JSON: missing 'bench' name");
  }
  doc.scale_up = root.NumberOr("scale_up", 0);
  doc.seed = static_cast<uint64_t>(root.NumberOr("seed", 0));
  const JsonValue* rows = root.Find("rows");
  if (rows == nullptr || !rows->is_array()) {
    return Status::InvalidArgument("bench JSON: missing 'rows' array");
  }
  for (const JsonValue& item : rows->array_items) {
    if (!item.is_object()) {
      return Status::InvalidArgument("bench JSON: row is not an object");
    }
    BenchJsonRow row;
    row.label = item.StringOr("label", "");
    if (row.label.empty()) {
      return Status::InvalidArgument("bench JSON: row without a label");
    }
    row.ok = item.BoolOr("ok", false);
    row.verified = item.BoolOr("verified", false);
    row.error = item.StringOr("error", "");
    if (const JsonValue* v = item.Find("measured_seconds");
        v != nullptr && v->is_number()) {
      row.measured_seconds = v->number_value;
      row.has_measured = true;
    }
    if (const JsonValue* v = item.Find("paper_seconds");
        v != nullptr && v->is_number()) {
      row.paper_seconds = v->number_value;
      row.has_paper = true;
    }
    if (const JsonValue* model = item.Find("model"); model != nullptr) {
      if (const JsonValue* v = model->Find("total_seconds");
          v != nullptr && v->is_number()) {
        row.model_seconds = v->number_value;
        row.has_model = true;
        row.residual_seconds = model->NumberOr("residual_seconds", 0);
      }
    }
    row.protocol_violations =
        static_cast<uint64_t>(item.NumberOr("protocol_violations", 0));
    row.raw = item;
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

StatusOr<BenchJsonDocument> ReadBenchJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  auto doc = ParseBenchJson(text.str());
  if (!doc.ok()) {
    return Status::InvalidArgument(path + ": " + doc.status().message());
  }
  return doc;
}

std::string BenchDiffResult::Summary(bool report_improvements) const {
  std::string out;
  for (const BenchDiffEntry& e : entries) {
    if (e.missing_in_new) {
      Appendf(&out, "  %-40s %10.4f s -> MISSING\n", e.label.c_str(),
              e.old_seconds);
      continue;
    }
    const char* verdict = e.regression     ? "REGRESSION"
                          : e.improvement ? "improved"
                                          : "ok";
    Appendf(&out, "  %-40s %10.4f s -> %10.4f s  (%+7.2f%%)  %s\n",
            e.label.c_str(), e.old_seconds, e.new_seconds,
            e.old_seconds > 0 ? 100.0 * e.delta_seconds / e.old_seconds : 0.0,
            verdict);
  }
  Appendf(&out, "%zu row(s): %zu regression(s), %zu improvement(s), %zu missing\n",
          entries.size(), regressions, improvements, missing);
  if (report_improvements && improvements > 0) {
    double saved = 0;
    Appendf(&out, "speedups beyond tolerance:\n");
    for (const BenchDiffEntry& e : entries) {
      if (!e.improvement) continue;
      saved += -e.delta_seconds;
      Appendf(&out, "  %-40s %.4f s faster (%.2fx)\n", e.label.c_str(),
              -e.delta_seconds, e.ratio > 0 ? 1.0 / e.ratio : 0.0);
    }
    Appendf(&out, "  total saved: %.4f s across %zu row(s)\n", saved,
            improvements);
  }
  return out;
}

StatusOr<BenchDiffResult> DiffBenchDocuments(const BenchJsonDocument& baseline,
                                             const BenchJsonDocument& current,
                                             const BenchDiffOptions& options) {
  if (baseline.bench != current.bench) {
    return Status::InvalidArgument("bench mismatch: baseline is '" +
                                   baseline.bench + "', current is '" +
                                   current.bench + "'");
  }
  if (baseline.scale_up != current.scale_up) {
    return Status::InvalidArgument(
        "scale_up mismatch: baseline ran at " +
        std::to_string(baseline.scale_up) + ", current at " +
        std::to_string(current.scale_up) + " -- not comparable");
  }
  if (baseline.seed != current.seed) {
    return Status::InvalidArgument("seed mismatch: baseline used " +
                                   std::to_string(baseline.seed) +
                                   ", current used " +
                                   std::to_string(current.seed));
  }
  BenchDiffResult result;
  for (const BenchJsonRow& old_row : baseline.rows) {
    if (!old_row.ok || !old_row.has_measured) continue;
    BenchDiffEntry entry;
    entry.label = old_row.label;
    entry.old_seconds = old_row.measured_seconds;
    const BenchJsonRow* new_row = current.FindRow(old_row.label);
    if (new_row == nullptr || !new_row->ok || !new_row->has_measured) {
      entry.missing_in_new = true;
      if (options.require_all_baseline_rows) ++result.missing;
      result.entries.push_back(std::move(entry));
      continue;
    }
    entry.new_seconds = new_row->measured_seconds;
    entry.delta_seconds = entry.new_seconds - entry.old_seconds;
    entry.ratio = entry.old_seconds > 0 ? entry.new_seconds / entry.old_seconds : 0;
    const double margin = std::max(
        entry.old_seconds * options.relative_tolerance,
        options.absolute_tolerance_seconds);
    if (entry.delta_seconds > margin) {
      entry.regression = true;
      ++result.regressions;
    } else if (-entry.delta_seconds > margin) {
      entry.improvement = true;
      ++result.improvements;
    }
    result.entries.push_back(std::move(entry));
  }
  return result;
}

}  // namespace rdmajoin
