#include "util/ledger.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "util/json.h"

namespace rdmajoin {

namespace {

double MedianOf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n == 0) return 0;
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

/// (bench, label) -> chronological measurements, series in first-seen order.
struct Series {
  std::string bench;
  std::string label;
  std::vector<double> values;
};

std::vector<Series> CollectSeries(const std::vector<LedgerEntry>& ledger,
                                  const std::string& bench_filter) {
  std::vector<Series> series;
  std::map<std::pair<std::string, std::string>, size_t> index;
  for (const LedgerEntry& entry : ledger) {
    if (!bench_filter.empty() && entry.bench != bench_filter) continue;
    for (const LedgerRow& row : entry.rows) {
      const auto key = std::make_pair(entry.bench, row.label);
      auto it = index.find(key);
      if (it == index.end()) {
        it = index.emplace(key, series.size()).first;
        series.push_back(Series{entry.bench, row.label, {}});
      }
      series[it->second].values.push_back(row.seconds);
    }
  }
  return series;
}

/// (bench, phase) -> chronological dominant-constraint names, first-seen
/// order. Entries without forensics simply contribute no point, so series
/// can be shorter than the timing series above.
struct ConstraintSeries {
  std::string bench;
  std::string phase;
  std::vector<std::string> bounds;
};

std::vector<ConstraintSeries> CollectConstraintSeries(
    const std::vector<LedgerEntry>& ledger, const std::string& bench_filter) {
  std::vector<ConstraintSeries> series;
  std::map<std::pair<std::string, std::string>, size_t> index;
  for (const LedgerEntry& entry : ledger) {
    if (!bench_filter.empty() && entry.bench != bench_filter) continue;
    for (const LedgerPhaseConstraint& pc : entry.phase_constraints) {
      const auto key = std::make_pair(entry.bench, pc.phase);
      auto it = index.find(key);
      if (it == index.end()) {
        it = index.emplace(key, series.size()).first;
        series.push_back(ConstraintSeries{entry.bench, pc.phase, {}});
      }
      series[it->second].bounds.push_back(pc.bound);
    }
  }
  return series;
}

/// One letter per ledger point: e(gress) i(ngress) m(sg_rate) c(redit),
/// '-' for none, '?' for anything unrecognized. A compute- vs ingress-bound
/// flip across commits reads as "eeeii" at a glance.
char ConstraintCode(const std::string& bound) {
  if (bound == "egress") return 'e';
  if (bound == "ingress") return 'i';
  if (bound == "msg_rate") return 'm';
  if (bound == "credit") return 'c';
  if (bound == "none") return '-';
  return '?';
}

/// 8-level ASCII sparkline of the series, min..max normalized.
std::string Sparkline(const std::vector<double>& values) {
  static const char kLevels[] = "_.-:=+*#";
  double lo = values.empty() ? 0 : values[0];
  double hi = lo;
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (double v : values) {
    const double frac = hi > lo ? (v - lo) / (hi - lo) : 0;
    const int level = std::min(7, static_cast<int>(frac * 8));
    out.push_back(kLevels[level]);
  }
  return out;
}

}  // namespace

LedgerEntry LedgerEntryFromBench(const BenchJsonDocument& bench,
                                 const std::string& commit) {
  LedgerEntry entry;
  entry.bench = bench.bench;
  entry.commit = commit.empty() ? "unknown" : commit;
  entry.scale_up = bench.scale_up;
  entry.seed = bench.seed;
  for (const BenchJsonRow& row : bench.rows) {
    if (!row.ok || !row.has_measured) continue;
    entry.rows.push_back(LedgerRow{row.label, row.measured_seconds});
    entry.total_seconds += row.measured_seconds;
  }
  return entry;
}

std::string LedgerEntryToJson(const LedgerEntry& entry) {
  std::string out = "{\"schema_version\":" + std::to_string(entry.schema_version);
  out += ",\"bench\":\"" + JsonEscape(entry.bench) + "\"";
  out += ",\"commit\":\"" + JsonEscape(entry.commit) + "\"";
  out += ",\"scale_up\":" + JsonNumber(entry.scale_up);
  out += ",\"seed\":" + JsonNumber(static_cast<double>(entry.seed));
  out += ",\"total_seconds\":" + JsonNumber(entry.total_seconds);
  out += ",\"rows\":[";
  for (size_t i = 0; i < entry.rows.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"label\":\"" + JsonEscape(entry.rows[i].label) + "\"";
    out += ",\"seconds\":" + JsonNumber(entry.rows[i].seconds) + "}";
  }
  out += "]";
  if (!entry.phase_constraints.empty()) {
    out += ",\"phase_constraints\":[";
    for (size_t i = 0; i < entry.phase_constraints.size(); ++i) {
      if (i > 0) out += ",";
      out += "{\"phase\":\"" + JsonEscape(entry.phase_constraints[i].phase) +
             "\"";
      out += ",\"bound\":\"" + JsonEscape(entry.phase_constraints[i].bound) +
             "\"}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

StatusOr<LedgerEntry> ParseLedgerEntry(const std::string& line) {
  auto parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument("ledger entry: not a JSON object");
  }
  LedgerEntry entry;
  entry.schema_version = static_cast<int>(root.NumberOr("schema_version", 0));
  if (entry.schema_version != kLedgerSchemaVersion) {
    return Status::InvalidArgument(
        "ledger entry: unsupported schema_version " +
        std::to_string(entry.schema_version) + " (expected " +
        std::to_string(kLedgerSchemaVersion) + ")");
  }
  entry.bench = root.StringOr("bench", "");
  if (entry.bench.empty()) {
    return Status::InvalidArgument("ledger entry: missing bench name");
  }
  entry.commit = root.StringOr("commit", "unknown");
  entry.scale_up = root.NumberOr("scale_up", 0);
  entry.seed = static_cast<uint64_t>(root.NumberOr("seed", 0));
  entry.total_seconds = root.NumberOr("total_seconds", 0);
  if (const JsonValue* rows = root.Find("rows"); rows != nullptr && rows->is_array()) {
    for (const JsonValue& row : rows->array_items) {
      LedgerRow lr;
      lr.label = row.StringOr("label", "");
      if (lr.label.empty()) {
        return Status::InvalidArgument("ledger entry: row without a label");
      }
      lr.seconds = row.NumberOr("seconds", 0);
      entry.rows.push_back(std::move(lr));
    }
  }
  if (const JsonValue* pcs = root.Find("phase_constraints");
      pcs != nullptr && pcs->is_array()) {
    for (const JsonValue& pc : pcs->array_items) {
      LedgerPhaseConstraint c;
      c.phase = pc.StringOr("phase", "");
      c.bound = pc.StringOr("bound", "");
      if (c.phase.empty() || c.bound.empty()) {
        return Status::InvalidArgument(
            "ledger entry: phase_constraints element without phase or bound");
      }
      entry.phase_constraints.push_back(std::move(c));
    }
  }
  return entry;
}

StatusOr<std::vector<LedgerEntry>> ReadLedgerFile(const std::string& path) {
  std::vector<LedgerEntry> ledger;
  std::ifstream in(path);
  if (!in) return ledger;  // Missing file == empty ledger.
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto entry = ParseLedgerEntry(line);
    if (!entry.ok()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_number) +
                                     ": " + entry.status().message());
    }
    ledger.push_back(std::move(*entry));
  }
  return ledger;
}

Status AppendLedgerEntry(const std::string& path, const LedgerEntry& entry) {
  std::ofstream out(path, std::ios::app);
  if (!out) return Status::NotFound("cannot open " + path + " for append");
  out << LedgerEntryToJson(entry) << "\n";
  out.close();
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

std::vector<LedgerDrift> DetectLedgerDrift(const std::vector<LedgerEntry>& ledger,
                                           double relative_tolerance,
                                           double absolute_tolerance_seconds,
                                           size_t min_points) {
  std::vector<LedgerDrift> drifts;
  for (const Series& s : CollectSeries(ledger, "")) {
    LedgerDrift d;
    d.bench = s.bench;
    d.label = s.label;
    d.points = s.values.size();
    d.latest = s.values.empty() ? 0 : s.values.back();
    if (s.values.size() >= 2) {
      std::vector<double> prior(s.values.begin(), s.values.end() - 1);
      d.median = MedianOf(prior);
      d.delta = d.latest - d.median;
      if (s.values.size() >= min_points) {
        const double margin = std::max(
            relative_tolerance * std::fabs(d.median), absolute_tolerance_seconds);
        d.drift = std::fabs(d.delta) > margin;
      }
    }
    drifts.push_back(std::move(d));
  }
  return drifts;
}

std::string FormatLedger(const std::vector<LedgerEntry>& ledger,
                         const std::string& bench_filter,
                         double relative_tolerance,
                         double absolute_tolerance_seconds) {
  std::string out;
  char buf[256];
  const std::vector<Series> series = CollectSeries(ledger, bench_filter);
  const std::vector<ConstraintSeries> constraints =
      CollectConstraintSeries(ledger, bench_filter);
  std::vector<LedgerDrift> drifts =
      DetectLedgerDrift(ledger, relative_tolerance, absolute_tolerance_seconds);
  std::snprintf(buf, sizeof(buf), "perf ledger: %zu entr%s, %zu series\n",
                ledger.size(), ledger.size() == 1 ? "y" : "ies", series.size());
  out += buf;
  const auto emit_constraints = [&](const std::string& b) {
    for (const ConstraintSeries& c : constraints) {
      if (c.bench != b) continue;
      std::string codes;
      for (const std::string& bound : c.bounds)
        codes.push_back(ConstraintCode(bound));
      std::snprintf(buf, sizeof(buf), "  bound:%-22s %-24s n=%-3zu latest %s\n",
                    c.phase.c_str(), codes.c_str(), c.bounds.size(),
                    c.bounds.empty() ? "none" : c.bounds.back().c_str());
      out += buf;
    }
  };
  std::string bench;
  for (const Series& s : series) {
    if (s.bench != bench) {
      if (!bench.empty()) emit_constraints(bench);
      bench = s.bench;
      out += bench + ":\n";
    }
    const LedgerDrift* drift = nullptr;
    for (const LedgerDrift& d : drifts) {
      if (d.bench == s.bench && d.label == s.label) {
        drift = &d;
        break;
      }
    }
    double lo = s.values.empty() ? 0 : s.values[0];
    double hi = lo;
    for (double v : s.values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    std::snprintf(buf, sizeof(buf),
                  "  %-28s %-24s n=%-3zu min %.6f max %.6f latest %.6f",
                  s.label.c_str(), Sparkline(s.values).c_str(), s.values.size(),
                  lo, hi, s.values.empty() ? 0.0 : s.values.back());
    out += buf;
    if (drift != nullptr && drift->drift) {
      std::snprintf(buf, sizeof(buf), "  DRIFT %+.6f s vs median %.6f",
                    drift->delta, drift->median);
      out += buf;
    }
    out += "\n";
  }
  if (!bench.empty()) emit_constraints(bench);
  return out;
}

}  // namespace rdmajoin
