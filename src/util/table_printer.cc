#include "util/table_printer.h"

#include <algorithm>
#include <cassert>

namespace rdmajoin {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  assert(rows_.empty());
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Int(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title_.empty()) std::fprintf(out, "=== %s ===\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                   c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  size_t total = header_.size() > 0 ? (header_.size() - 1) * 2 : 0;
  for (size_t w : widths) total += w;
  std::string rule(total, '-');
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
  std::fprintf(out, "\n");
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", row[c].c_str(), c + 1 == row.size() ? "\n" : ",");
    }
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace rdmajoin
