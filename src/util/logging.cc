#include "util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rdmajoin {

namespace {
LogLevel g_level = LogLevel::kOff;
bool g_env_checked = false;
Logger::Sink& GlobalSink() {
  static Logger::Sink* sink = new Logger::Sink();
  return *sink;
}
}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::InitFromEnvironment() {
  if (g_env_checked) return;
  g_env_checked = true;
  const char* env = std::getenv("RDMAJOIN_LOG_LEVEL");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) {
    g_level = LogLevel::kDebug;
  } else if (std::strcmp(env, "info") == 0) {
    g_level = LogLevel::kInfo;
  } else if (std::strcmp(env, "warning") == 0) {
    g_level = LogLevel::kWarning;
  } else if (std::strcmp(env, "error") == 0) {
    g_level = LogLevel::kError;
  }
}

LogLevel Logger::level() {
  InitFromEnvironment();
  return g_level;
}

void Logger::SetLevel(LogLevel level) {
  g_env_checked = true;  // Explicit setting overrides the environment.
  g_level = level;
}

void Logger::SetSink(Sink sink) { GlobalSink() = std::move(sink); }

void Logger::Write(LogLevel level, const std::string& message) {
  if (level < Logger::level()) return;
  if (GlobalSink()) {
    GlobalSink()(level, message);
    return;
  }
  std::fprintf(stderr, "[rdmajoin %s] %s\n", LogLevelName(level), message.c_str());
}

}  // namespace rdmajoin
