#ifndef RDMAJOIN_UTIL_ARENA_H_
#define RDMAJOIN_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace rdmajoin {

/// Bump allocator for run-scoped simulation records (WR/span records, flow
/// tables, receive-ring state). The discrete-event replay allocates millions
/// of short-lived records per run; routing them through one arena turns the
/// per-record heap traffic into pointer bumps inside a handful of large
/// blocks, and releases everything at once when the run's arena is destroyed.
///
/// Memory is monotonic: Allocate never frees, and a structure that regrows
/// (e.g. a FlatMap rehash) simply abandons its old block inside the arena.
/// That is the intended trade -- the arena lives exactly as long as one
/// replay/recorder, so "leaked" blocks are reclaimed wholesale at the end.
/// Not thread-safe, like the simulator itself.
class Arena {
 public:
  /// `block_bytes` sizes the chunks requested from the system allocator;
  /// allocations larger than a block get a dedicated block of their own.
  explicit Arena(size_t block_bytes = 256 * 1024) : block_bytes_(block_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `count` objects of T, aligned for T.
  /// T must be trivially destructible: the arena never runs destructors.
  template <typename T>
  T* AllocateRaw(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena records are released without destructors");
    return static_cast<T*>(AllocateBytes(count * sizeof(T), alignof(T)));
  }

  /// Value-initialized array of `count` objects of T.
  template <typename T>
  T* AllocateArray(size_t count) {
    T* p = AllocateRaw<T>(count);
    for (size_t i = 0; i < count; ++i) new (p + i) T();
    return p;
  }

  /// Total bytes handed out (excluding block slack).
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total bytes requested from the system allocator.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  void* AllocateBytes(size_t bytes, size_t align) {
    size_t offset = (cursor_ + align - 1) & ~(align - 1);
    if (current_ == nullptr || offset + bytes > current_size_) {
      const size_t want = bytes + align > block_bytes_ ? bytes + align
                                                       : block_bytes_;
      blocks_.push_back(std::make_unique<unsigned char[]>(want));
      current_ = blocks_.back().get();
      current_size_ = want;
      bytes_reserved_ += want;
      cursor_ = 0;
      offset = (reinterpret_cast<uintptr_t>(current_) % align == 0)
                   ? 0
                   : align - reinterpret_cast<uintptr_t>(current_) % align;
    }
    void* p = current_ + offset;
    cursor_ = offset + bytes;
    bytes_allocated_ += bytes;
    return p;
  }

  size_t block_bytes_;
  std::vector<std::unique_ptr<unsigned char[]>> blocks_;
  unsigned char* current_ = nullptr;
  size_t current_size_ = 0;
  size_t cursor_ = 0;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_ARENA_H_
