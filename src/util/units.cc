#include "util/units.h"

#include <cstdio>

namespace rdmajoin {

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB && bytes % kGiB == 0) {
    std::snprintf(buf, sizeof(buf), "%llu GiB",
                  static_cast<unsigned long long>(bytes / kGiB));
  } else if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB && bytes % kMiB == 0) {
    std::snprintf(buf, sizeof(buf), "%llu MiB",
                  static_cast<unsigned long long>(bytes / kMiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%llu KiB",
                  static_cast<unsigned long long>(bytes / kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  return buf;
}

std::string FormatRateMBps(double bytes_per_second) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f MB/s", bytes_per_second / kMB);
  return buf;
}

}  // namespace rdmajoin
