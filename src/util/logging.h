#ifndef RDMAJOIN_UTIL_LOGGING_H_
#define RDMAJOIN_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace rdmajoin {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Minimal leveled logger. Off by default (benches and tests stay quiet);
/// enable with SetLogLevel or the RDMAJOIN_LOG_LEVEL environment variable
/// (debug|info|warning|error). Messages go to stderr unless a sink is
/// installed. Single-threaded by design, like the simulator.
///
///   RDMAJOIN_LOG(kInfo) << "network pass done in " << seconds << " s";
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Global minimum level; messages below it are discarded.
  static LogLevel level();
  static void SetLevel(LogLevel level);
  /// Redirects output (tests); nullptr restores stderr.
  static void SetSink(Sink sink);
  /// Reads RDMAJOIN_LOG_LEVEL; called lazily on first use.
  static void InitFromEnvironment();

  static void Write(LogLevel level, const std::string& message);
};

/// Stream-style log statement; the expression after the macro is only
/// evaluated when the level is enabled.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Write(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define RDMAJOIN_LOG(severity)                                      \
  if (::rdmajoin::LogLevel::severity < ::rdmajoin::Logger::level()) \
    ;                                                               \
  else                                                              \
    ::rdmajoin::LogMessage(::rdmajoin::LogLevel::severity).stream()

/// Name for a level ("INFO").
const char* LogLevelName(LogLevel level);

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_LOGGING_H_
