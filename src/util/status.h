#ifndef RDMAJOIN_UTIL_STATUS_H_
#define RDMAJOIN_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace rdmajoin {

/// Error codes used throughout the library. Library code never throws; fallible
/// operations return a Status (or StatusOr<T>) instead, following the idiom of
/// production storage engines.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kNotFound,
  kAlreadyExists,
  kInternal,
  kUnimplemented,
  /// A transient runtime failure (injected fault, lost message, errored
  /// queue pair) defeated the transport's retry budget. Distinct from
  /// kInternal so callers can tell "the run hit a fault" from "the
  /// simulator has a bug".
  kUnavailable,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result. The OK status carries no message and
/// is cheap to construct and copy. [[nodiscard]] makes silently dropped error
/// statuses a compile error (the determinism contract, docs/correctness.md);
/// deliberate discards must be spelled `(void)` and justified with a
/// `// lint: discard-ok(<reason>)` annotation.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// Propagates a non-OK status to the caller. Usable only in functions that
/// themselves return Status.
#define RDMAJOIN_RETURN_IF_ERROR(expr)          \
  do {                                          \
    ::rdmajoin::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_STATUS_H_
