#ifndef RDMAJOIN_UTIL_SMALL_FUNCTION_H_
#define RDMAJOIN_UTIL_SMALL_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rdmajoin {

/// Move-only `void()` callable with inline storage: the non-allocating
/// small-callback path of the event queue. Discrete-event callbacks are
/// almost always a lambda over a few pointers; std::function heap-allocates
/// many of them (its small-buffer optimization is implementation-defined and
/// typically two pointers), which at millions of events per replay turns the
/// event queue into an allocator benchmark. SmallFunction guarantees inline
/// storage up to `Bytes` and falls back to the heap only beyond it, so the
/// hot path never touches malloc.
template <size_t Bytes = 48>
class SmallFunction {
 public:
  SmallFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Bytes && alignof(Fn) <= alignof(void*) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      new (storage_) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      relocate_ = [](void* dst, void* src) {
        new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      };
      destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
      heap_ = false;
    } else {
      *reinterpret_cast<void**>(storage_) = new Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (**static_cast<Fn**>(p))(); };
      relocate_ = [](void* dst, void* src) {
        *static_cast<void**>(dst) = *static_cast<void**>(src);
      };
      destroy_ = [](void* p) { delete *static_cast<Fn**>(p); };
      heap_ = true;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { MoveFrom(std::move(other)); }
  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;
  ~SmallFunction() { Reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }
  /// True when the callable spilled to the heap (diagnostics/tests).
  bool on_heap() const { return heap_; }

  void operator()() { invoke_(storage_); }

 private:
  void MoveFrom(SmallFunction&& other) {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    heap_ = other.heap_;
    if (invoke_ != nullptr) relocate_(storage_, other.storage_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
    other.heap_ = false;
  }
  void Reset() {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
    heap_ = false;
  }

  alignas(void*) unsigned char storage_[Bytes];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  bool heap_ = false;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_SMALL_FUNCTION_H_
