#ifndef RDMAJOIN_UTIL_JSON_H_
#define RDMAJOIN_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/statusor.h"

namespace rdmajoin {

/// A parsed JSON document node. Minimal by design: the repo's machine
/// interchange formats (bench JSON, trace JSON, metrics snapshots) only need
/// object/array/number/string/bool/null, and keeping the representation a
/// plain struct keeps consumers (tools/rdmajoin_analyze, tests) simple.
/// Object member order is preserved.
struct JsonValue {
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array_items;
  std::vector<std::pair<std::string, JsonValue>> object_members;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Typed lookups with defaults, for tolerant schema readers.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key, const std::string& fallback) const;
  bool BoolOr(const std::string& key, bool fallback) const;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Returns InvalidArgument with an offset on malformed
/// input. Handles the full escape set including \uXXXX (decoded to UTF-8).
StatusOr<JsonValue> ParseJson(const std::string& text);

/// Escapes `s` for embedding inside a JSON string literal (no surrounding
/// quotes added).
std::string JsonEscape(const std::string& s);

/// Formats a double as a JSON number: shortest round-trip form, and the
/// non-finite values (which JSON cannot represent) as null.
std::string JsonNumber(double v);

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_JSON_H_
