#ifndef RDMAJOIN_UTIL_TABLE_PRINTER_H_
#define RDMAJOIN_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace rdmajoin {

/// Collects rows of string cells and prints them as an aligned text table or
/// as CSV. Every benchmark harness uses this to emit the rows/series of the
/// paper figure it reproduces.
class TablePrinter {
 public:
  /// `title` is printed above the table; may be empty.
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Adds a data row; the cell count must match the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` digits.
  static std::string Num(double value, int precision = 2);
  static std::string Int(long long value);

  /// Prints an aligned table to `out` (default stdout).
  void Print(std::FILE* out = stdout) const;

  /// Prints comma-separated values (header + rows) to `out`.
  void PrintCsv(std::FILE* out = stdout) const;

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_TABLE_PRINTER_H_
