#include "util/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rdmajoin {

// The sampler works on the 1-based support [1, n] with weight k^-theta and
// shifts to the library's 0-based ranks on return. H below is the integral
// of the continuous envelope h(x) = x^-theta; inversion of H turns a uniform
// variate into an envelope sample, and the rejection step corrects the
// continuous envelope down to the discrete staircase. Acceptance probability
// is > 70% for every n and theta, so the expected cost is O(1).

double ZipfGenerator::HIntegral(double x) const {
  const double log_x = std::log(x);
  if (theta_ == 1.0) return log_x;
  return std::expm1((1.0 - theta_) * log_x) / (1.0 - theta_);
}

double ZipfGenerator::HIntegralInverse(double x) const {
  if (theta_ == 1.0) return std::exp(x);
  double t = x * (1.0 - theta_);
  // Clamp against rounding below the pole of log1p.
  if (t < -1.0) t = -1.0;
  return std::exp(std::log1p(t) / (1.0 - theta_));
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  assert(n > 0);
  assert(theta >= 0.0);
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_n_ = HIntegral(static_cast<double>(n) + 0.5);
  // h(x) = exp(-theta * ln x); s bounds k - x for the shortcut acceptance.
  const double h2 = std::exp(-theta_ * std::log(2.0));
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - h2);
}

uint64_t ZipfGenerator::Next() {
  while (true) {
    const double u =
        h_integral_n_ + rng_.NextDouble() * (h_integral_x1_ - h_integral_n_);
    // u is uniform in (H(1.5) - 1, H(n + 0.5)].
    const double x = HIntegralInverse(u);
    uint64_t k = static_cast<uint64_t>(std::llround(std::max(x, 1.0)));
    k = std::clamp<uint64_t>(k, 1, n_);
    const double kd = static_cast<double>(k);
    // Accept if x falls within s of the integer (always-accept zone), or if
    // u clears the exact per-integer acceptance bound.
    if (kd - x <= s_) return k - 1;
    const double h_k = std::exp(-theta_ * std::log(kd));
    if (u >= HIntegral(kd + 0.5) - h_k) return k - 1;
  }
}

}  // namespace rdmajoin
