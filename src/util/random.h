#ifndef RDMAJOIN_UTIL_RANDOM_H_
#define RDMAJOIN_UTIL_RANDOM_H_

#include <cstdint>

namespace rdmajoin {

/// Deterministic xorshift64* pseudo-random generator. All randomness in the
/// library (workload generation, shuffles) flows through explicitly seeded
/// instances so every experiment is reproducible bit-for-bit.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed == 0 ? UINT64_C(0x9E3779B9) : seed) {}

  /// Uniform 64-bit value.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * UINT64_C(0x2545F4914F6CDD1D);
  }

  /// Uniform value in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_UTIL_RANDOM_H_
