#include "transport/collectives.h"

#include <cassert>
#include <cstring>

namespace rdmajoin {

StatusOr<std::unique_ptr<CollectiveNetwork>> CollectiveNetwork::Create(
    uint32_t num_machines, uint64_t element_capacity, const CostModel& costs,
    ProtocolValidator* validator) {
  if (num_machines == 0) {
    return Status::InvalidArgument("need at least one machine");
  }
  if (element_capacity == 0) {
    return Status::InvalidArgument("element capacity must be positive");
  }
  auto net = std::unique_ptr<CollectiveNetwork>(new CollectiveNetwork());
  RDMAJOIN_RETURN_IF_ERROR(
      net->Init(num_machines, element_capacity, costs, validator));
  return net;
}

CollectiveNetwork::~CollectiveNetwork() {
  for (uint32_t s = 0; s < num_machines_; ++s) {
    for (uint32_t d = 0; d < num_machines_; ++d) {
      if (s == d) continue;
      Link& l = link(s, d);
      if (!l.recv_buffer.empty()) {
        // lint: discard-ok(destructor teardown; validator reports any leak)
        (void)devices_[d]->DeregisterMemory(l.recv_mr);
      }
    }
    if (!send_buffers_.empty() && !send_buffers_[s].empty()) {
      // lint: discard-ok(destructor teardown; validator reports any leak)
      (void)devices_[s]->DeregisterMemory(send_mrs_[s]);
    }
  }
  links_.clear();
}

Status CollectiveNetwork::Init(uint32_t num_machines, uint64_t element_capacity,
                               const CostModel& costs,
                               ProtocolValidator* validator) {
  num_machines_ = num_machines;
  element_capacity_ = element_capacity;
  devices_.reserve(num_machines);
  for (uint32_t m = 0; m < num_machines; ++m) {
    devices_.push_back(std::make_unique<RdmaDevice>(m, nullptr, costs));
    devices_.back()->set_validator(validator);
  }
  send_buffers_.resize(num_machines);
  send_mrs_.resize(num_machines);
  for (uint32_t m = 0; m < num_machines; ++m) {
    send_buffers_[m].resize(element_capacity);
    auto mr = devices_[m]->RegisterMemory(
        reinterpret_cast<uint8_t*>(send_buffers_[m].data()),
        element_capacity * sizeof(uint64_t));
    RDMAJOIN_RETURN_IF_ERROR(mr.status());
    send_mrs_[m] = *mr;
  }
  links_.resize(static_cast<size_t>(num_machines) * num_machines);
  for (uint32_t s = 0; s < num_machines; ++s) {
    for (uint32_t d = 0; d < num_machines; ++d) {
      if (s == d) continue;
      Link& l = link(s, d);
      l.src_send_cq = std::make_unique<CompletionQueue>();
      l.src_recv_cq = std::make_unique<CompletionQueue>();
      l.dst_send_cq = std::make_unique<CompletionQueue>();
      l.dst_recv_cq = std::make_unique<CompletionQueue>();
      l.src_qp = std::make_unique<QueuePair>(devices_[s].get(), l.src_send_cq.get(),
                                             l.src_recv_cq.get());
      l.dst_qp = std::make_unique<QueuePair>(devices_[d].get(), l.dst_send_cq.get(),
                                             l.dst_recv_cq.get());
      RDMAJOIN_RETURN_IF_ERROR(QueuePair::Connect(l.src_qp.get(), l.dst_qp.get()));
      l.recv_buffer.resize(element_capacity);
      auto mr = devices_[d]->RegisterMemory(
          reinterpret_cast<uint8_t*>(l.recv_buffer.data()),
          element_capacity * sizeof(uint64_t));
      RDMAJOIN_RETURN_IF_ERROR(mr.status());
      l.recv_mr = *mr;
    }
  }
  return Status::OK();
}

StatusOr<std::vector<std::vector<uint64_t>>> CollectiveNetwork::AllGather(
    const std::vector<std::vector<uint64_t>>& locals) {
  if (locals.size() != num_machines_) {
    return Status::InvalidArgument("need one contribution per machine");
  }
  const uint64_t n = locals.empty() ? 0 : locals[0].size();
  for (const auto& v : locals) {
    if (v.size() != n) {
      return Status::InvalidArgument("contributions must have equal size");
    }
  }
  if (n > element_capacity_) {
    return Status::OutOfRange("contribution exceeds collective capacity");
  }
  const uint64_t bytes = n * sizeof(uint64_t);

  // Post receives, then sends, then drain completions -- the standard verbs
  // choreography for a mesh exchange.
  for (uint32_t s = 0; s < num_machines_; ++s) {
    for (uint32_t d = 0; d < num_machines_; ++d) {
      if (s == d) continue;
      RDMAJOIN_RETURN_IF_ERROR(
          link(s, d).dst_qp->PostRecv(/*wr_id=*/s, link(s, d).recv_mr.lkey, 0, bytes));
    }
  }
  for (uint32_t s = 0; s < num_machines_; ++s) {
    std::memcpy(send_buffers_[s].data(), locals[s].data(), bytes);
    for (uint32_t d = 0; d < num_machines_; ++d) {
      if (s == d) continue;
      RDMAJOIN_RETURN_IF_ERROR(
          link(s, d).src_qp->PostSend(/*wr_id=*/d, send_mrs_[s].lkey, 0, bytes));
      ++messages_sent_;
      WorkCompletion wc;
      if (!link(s, d).src_send_cq->PollOne(&wc) || !wc.success) {
        return Status::Internal("missing send completion in all-gather");
      }
      if (!link(s, d).dst_recv_cq->PollOne(&wc) || !wc.success) {
        return Status::Internal("missing recv completion in all-gather");
      }
    }
  }

  // Assemble each machine's view: its own vector plus every peer's.
  std::vector<std::vector<uint64_t>> views(num_machines_);
  for (uint32_t m = 0; m < num_machines_; ++m) {
    views[m].reserve(num_machines_ * n);
    for (uint32_t src = 0; src < num_machines_; ++src) {
      const uint64_t* data =
          src == m ? locals[m].data() : link(src, m).recv_buffer.data();
      views[m].insert(views[m].end(), data, data + n);
    }
  }
  return views;
}

StatusOr<std::vector<uint64_t>> CollectiveNetwork::AllReduceSum(
    const std::vector<std::vector<uint64_t>>& locals) {
  auto views = AllGather(locals);
  RDMAJOIN_RETURN_IF_ERROR(views.status());
  const uint64_t n = locals.empty() ? 0 : locals[0].size();
  std::vector<uint64_t> sum(n, 0);
  // Every machine reduces its own view; they are identical by construction,
  // which the debug build asserts.
  for (uint32_t m = 0; m < num_machines_; ++m) {
    std::vector<uint64_t> local_sum(n, 0);
    for (uint32_t src = 0; src < num_machines_; ++src) {
      for (uint64_t i = 0; i < n; ++i) local_sum[i] += (*views)[m][src * n + i];
    }
    if (m == 0) {
      sum = std::move(local_sum);
    } else {
      assert(local_sum == sum && "all-reduce views diverged");
    }
  }
  return sum;
}

double CollectiveNetwork::ExchangeSeconds(uint32_t num_machines,
                                          uint64_t bytes_per_machine,
                                          double bandwidth, double latency) {
  if (num_machines <= 1) return 0.0;
  const double peers = num_machines - 1;
  // Every host serializes its NM-1 outgoing copies over its port and pays
  // one propagation latency for the last message to land.
  return peers * static_cast<double>(bytes_per_machine) / bandwidth + latency;
}

}  // namespace rdmajoin
