#ifndef RDMAJOIN_TRANSPORT_TRANSPORT_KIND_H_
#define RDMAJOIN_TRANSPORT_TRANSPORT_KIND_H_

namespace rdmajoin {

/// The network mechanism used to exchange partitions (Section 4.2.2 and the
/// Figure 5b comparison).
enum class TransportKind {
  /// Two-sided RDMA SEND/RECV (channel semantics). The paper's evaluated
  /// configuration: the receiver posts small registered buffers and one
  /// thread per machine drains them, copying into per-partition storage.
  kRdmaChannel,
  /// One-sided RDMA WRITE (memory semantics). Requires enough memory to
  /// pre-register one large destination buffer per (partition, source
  /// machine), sized from the global histogram; no receiver involvement.
  kRdmaMemory,
  /// One-sided RDMA READ (memory semantics, pull): senders stage their
  /// partitioned data in registered local regions; each destination machine
  /// pulls its partitions at its own pace. Receiver-driven -- the dual of
  /// kRdmaMemory -- with the registration cost on the sender side.
  kRdmaRead,
  /// TCP/IP over the same fabric (IPoIB). Reduced effective bandwidth,
  /// per-message kernel-crossing cost, and sender-side copies.
  kTcp,
};

/// Whether a sender overlaps partitioning with in-flight transfers
/// (Section 4.2.1: at least two RDMA buffers per target partition) or blocks
/// on each transfer (the non-interleaved variant of Figure 5b).
enum class InterleavePolicy {
  kInterleaved,
  kNonInterleaved,
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_TRANSPORT_TRANSPORT_KIND_H_
