#ifndef RDMAJOIN_TRANSPORT_WIRE_FORMAT_H_
#define RDMAJOIN_TRANSPORT_WIRE_FORMAT_H_

#include <cstdint>
#include <cstring>

namespace rdmajoin {

/// Header written at the start of every two-sided message so the receiver
/// can route the payload to the right partition buffer (channel semantics
/// carry no addressing information, unlike one-sided writes).
struct WireHeader {
  uint32_t partition = 0;
  /// 0 = inner relation (R), 1 = outer relation (S).
  uint32_t relation = 0;
  uint64_t payload_bytes = 0;
};

inline constexpr uint64_t kWireHeaderBytes = sizeof(WireHeader);
static_assert(sizeof(WireHeader) == 16, "wire header must be 16 bytes");

inline void WriteWireHeader(uint8_t* buf, const WireHeader& h) {
  std::memcpy(buf, &h, sizeof(h));
}

inline WireHeader ReadWireHeader(const uint8_t* buf) {
  WireHeader h;
  std::memcpy(&h, buf, sizeof(h));
  return h;
}

}  // namespace rdmajoin

#endif  // RDMAJOIN_TRANSPORT_WIRE_FORMAT_H_
