#ifndef RDMAJOIN_TRANSPORT_CHANNEL_H_
#define RDMAJOIN_TRANSPORT_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/memory_space.h"
#include "join/join_config.h"
#include "rdma/buffer_pool.h"
#include "rdma/verbs.h"
#include "util/status.h"
#include "util/statusor.h"

namespace rdmajoin {

/// Destination-side consumer of shipped partition data. One sink per
/// machine; implemented by the join executor's partition store.
class PartitionSink {
 public:
  virtual ~PartitionSink() = default;
  /// Appends `bytes` of tuples to (partition, relation) storage.
  /// relation: 0 = inner (R), 1 = outer (S).
  virtual void Deliver(uint32_t partition, uint32_t relation, const uint8_t* tuples,
                       uint64_t bytes) = 0;
};

/// Per-Ship recovery record: how many times the transport had to re-post the
/// send and how much virtual delay (timeouts plus exponential backoff) the
/// recovery cost. The exchange copies this into the trace's SendRecord so the
/// timing replay can charge the delay to the fault_recovery bucket. All zero
/// on the fault-free path.
struct ShipReport {
  uint32_t retries = 0;
  double delay_seconds = 0;
};

/// Source-side view of the network used by the partitioning threads: a
/// filled buffer is handed to Ship, which moves its payload into the
/// destination machine's partition storage according to the configured
/// transport semantics.
class Channel {
 public:
  virtual ~Channel() = default;
  /// Ships `buf->used` payload bytes (stored from offset kWireHeaderBytes
  /// in two-sided mode, from offset 0 otherwise) to machine `dst`. Returns
  /// the number of bytes put on the wire (payload plus header, if any).
  /// On error the caller still owns `buf` and must release it exactly once.
  /// `report`, when non-null, receives the retry/delay cost of this Ship.
  virtual StatusOr<uint64_t> Ship(uint32_t dst, uint32_t partition, uint32_t relation,
                                  RegisteredBuffer* buf,
                                  ShipReport* report = nullptr) = 0;
  /// Byte offset at which the partitioner must start writing tuples.
  virtual uint64_t payload_offset() const = 0;
};

/// Aggregate transport bookkeeping the timing replay consumes.
struct TransportStats {
  /// Virtual seconds spent registering destination regions before the
  /// network pass (relevant for one-sided memory semantics, Section 4.2.2).
  std::vector<double> setup_registration_seconds;
  /// Actual payload bytes each machine received via two-sided messages and
  /// had to copy out of receive buffers.
  std::vector<uint64_t> recv_bytes;
  std::vector<uint64_t> recv_messages;
};

/// Owns the per-machine RDMA devices, queue pairs, receive rings and staging
/// regions for one join execution, and hands out the per-machine Channel.
class TransportNetwork {
 public:
  /// `incoming_bytes[dst][src]` is the expected payload volume from src to
  /// dst (used to size one-sided staging regions; may be empty for other
  /// transports). `sinks[m]` consumes data arriving at machine m.
  /// `memories[m]` enforces machine m's memory budget (entries may be null).
  static StatusOr<std::unique_ptr<TransportNetwork>> Create(
      const ClusterConfig& cluster, const JoinConfig& config, uint32_t tuple_bytes,
      const std::vector<std::vector<uint64_t>>& incoming_bytes,
      std::vector<PartitionSink*> sinks, std::vector<MemorySpace*> memories);

  ~TransportNetwork();
  TransportNetwork(const TransportNetwork&) = delete;
  TransportNetwork& operator=(const TransportNetwork&) = delete;

  Channel* channel(uint32_t src) { return channels_[src].get(); }
  RdmaDevice* device(uint32_t m) { return devices_[m].get(); }
  const TransportStats& stats() const { return stats_; }

  /// The queue pair machine `reader` uses to issue one-sided operations
  /// against machine `peer` (RDMA READ pulls), and its completion queue.
  QueuePair* reader_qp(uint32_t reader, uint32_t peer) {
    return link(reader, peer).src_qp.get();
  }
  CompletionQueue* reader_cq(uint32_t reader, uint32_t peer) {
    return link(reader, peer).src_send_cq.get();
  }

 private:
  friend class RdmaChannelImpl;
  friend class RdmaMemoryImpl;
  friend class TcpChannelImpl;

  TransportNetwork() = default;
  Status Init(const ClusterConfig& cluster, const JoinConfig& config,
              uint32_t tuple_bytes,
              const std::vector<std::vector<uint64_t>>& incoming_bytes,
              std::vector<PartitionSink*> sinks, std::vector<MemorySpace*> memories);

  ClusterConfig cluster_;
  JoinConfig config_;
  uint64_t buffer_bytes_ = 0;  // actual size of one RDMA/send buffer
  std::vector<PartitionSink*> sinks_;
  std::vector<MemorySpace*> memories_;
  std::vector<std::unique_ptr<RdmaDevice>> devices_;
  std::vector<std::unique_ptr<Channel>> channels_;
  TransportStats stats_;

  // --- Two-sided (channel semantics) state ---
  struct Link {
    std::unique_ptr<QueuePair> src_qp;
    std::unique_ptr<QueuePair> dst_qp;
    std::unique_ptr<CompletionQueue> src_send_cq;
    std::unique_ptr<CompletionQueue> src_recv_cq;
    std::unique_ptr<CompletionQueue> dst_send_cq;
    std::unique_ptr<CompletionQueue> dst_recv_cq;
    std::unique_ptr<uint8_t[]> recv_ring;  // recv_depth * buffer_bytes, dst side
    MemoryRegion recv_mr;
    uint32_t recv_depth = 0;
  };
  /// links_[src * NM + dst]; only src != dst populated.
  std::vector<Link> links_;
  Link& link(uint32_t src, uint32_t dst) {
    return links_[src * cluster_.num_machines + dst];
  }

  // --- One-sided (memory semantics) state ---
  struct StagingRegion {
    std::unique_ptr<uint8_t[]> data;
    MemoryRegion mr;
    uint64_t capacity = 0;
    /// Next write offset per source machine.
    std::vector<uint64_t> cursor;
    /// Base offset per source machine (prefix sums of expected bytes).
    std::vector<uint64_t> base;
  };
  std::vector<StagingRegion> staging_;  // per destination machine

  // Reserved (virtual) bytes per machine, released in the destructor.
  std::vector<uint64_t> reserved_bytes_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_TRANSPORT_CHANNEL_H_
