#ifndef RDMAJOIN_TRANSPORT_COLLECTIVES_H_
#define RDMAJOIN_TRANSPORT_COLLECTIVES_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "rdma/verbs.h"
#include "util/status.h"
#include "util/statusor.h"

namespace rdmajoin {

/// Control-plane collectives over the verbs substrate.
///
/// Section 4.1: "The machine-level histograms are then exchanged over the
/// network. They can either be sent to a predesignated coordinator or
/// distributed among all the nodes." This class implements the all-to-all
/// variant as a verbs-level all-gather (every machine posts its vector to
/// every peer through two-sided sends into preregistered receive regions),
/// plus the reductions the join needs on top.
///
/// Collectives run on the control path before the network partitioning pass;
/// their (small) cost is modeled analytically by ExchangeSeconds and charged
/// to the histogram phase.
class CollectiveNetwork {
 public:
  /// Builds a full mesh of queue pairs between `num_machines` devices.
  /// `element_capacity` is the largest vector (in uint64 elements) a single
  /// collective call may exchange. `validator` (optional) observes every
  /// device for verbs-contract violations and must outlive the network.
  static StatusOr<std::unique_ptr<CollectiveNetwork>> Create(
      uint32_t num_machines, uint64_t element_capacity,
      const CostModel& costs = CostModel(), ProtocolValidator* validator = nullptr);

  ~CollectiveNetwork();
  CollectiveNetwork(const CollectiveNetwork&) = delete;
  CollectiveNetwork& operator=(const CollectiveNetwork&) = delete;

  uint32_t num_machines() const { return num_machines_; }

  /// All-gather: machine m contributes `locals[m]`; returns, for each
  /// machine, the concatenation of every machine's contribution (the result
  /// each machine would hold). All contributions must have equal size.
  StatusOr<std::vector<std::vector<uint64_t>>> AllGather(
      const std::vector<std::vector<uint64_t>>& locals);

  /// All-reduce (sum): element-wise sum of every machine's contribution,
  /// as seen by every machine. Implemented as all-gather + local reduction,
  /// the way the join combines machine-level histograms into the global
  /// histogram.
  StatusOr<std::vector<uint64_t>> AllReduceSum(
      const std::vector<std::vector<uint64_t>>& locals);

  /// Analytical cost of one all-gather of `bytes_per_machine` bytes on a
  /// fabric with per-host bandwidth `bandwidth` and base latency `latency`:
  /// every host sends NM-1 messages and receives NM-1 messages.
  static double ExchangeSeconds(uint32_t num_machines, uint64_t bytes_per_machine,
                                double bandwidth, double latency);

  /// Total control messages sent so far (for tests/stats).
  uint64_t messages_sent() const { return messages_sent_; }

 private:
  CollectiveNetwork() = default;
  Status Init(uint32_t num_machines, uint64_t element_capacity,
              const CostModel& costs, ProtocolValidator* validator);

  uint32_t num_machines_ = 0;
  uint64_t element_capacity_ = 0;
  uint64_t messages_sent_ = 0;
  std::vector<std::unique_ptr<RdmaDevice>> devices_;
  struct Link {
    std::unique_ptr<QueuePair> src_qp;
    std::unique_ptr<QueuePair> dst_qp;
    std::unique_ptr<CompletionQueue> src_send_cq;
    std::unique_ptr<CompletionQueue> src_recv_cq;
    std::unique_ptr<CompletionQueue> dst_send_cq;
    std::unique_ptr<CompletionQueue> dst_recv_cq;
    std::vector<uint64_t> recv_buffer;  // dst-side registered region
    MemoryRegion recv_mr;
  };
  std::vector<Link> links_;  // [src * NM + dst]
  Link& link(uint32_t src, uint32_t dst) { return links_[src * num_machines_ + dst]; }
  // Per-machine registered send staging.
  std::vector<std::vector<uint64_t>> send_buffers_;
  std::vector<MemoryRegion> send_mrs_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_TRANSPORT_COLLECTIVES_H_
