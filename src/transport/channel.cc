#include "transport/channel.h"

#include <cassert>
#include <cstring>
#include <string>

#include "fault/injector.h"
#include "timing/span_trace.h"
#include "transport/wire_format.h"
#include "util/metrics.h"
#include "util/units.h"

namespace rdmajoin {

// The channel implementations live in the rdmajoin namespace (not an
// unnamed one) so the friend declarations in TransportNetwork apply.

/// Two-sided SEND/RECV channel (the paper's evaluated configuration).
/// Every Ship posts the filled registered buffer; the message lands in the
/// destination's receive ring, where the (simulated) receiver core copies it
/// into partition storage and reposts the receive buffer.
class RdmaChannelImpl : public Channel {
 public:
  RdmaChannelImpl(TransportNetwork* net, uint32_t src) : net_(net), src_(src) {}

  uint64_t payload_offset() const override { return kWireHeaderBytes; }

  StatusOr<uint64_t> Ship(uint32_t dst, uint32_t partition, uint32_t relation,
                          RegisteredBuffer* buf, ShipReport* report) override;

 private:
  /// One send attempt: post the WR and drain the sender-side completion.
  /// `*completed` is false when no completion arrived (dropped message),
  /// `*succeeded` is false when the completion carried an error status.
  Status TrySend(QueuePair* qp, CompletionQueue* cq, RegisteredBuffer* buf,
                 uint64_t wire_bytes, bool* completed, bool* succeeded);

  TransportNetwork* net_;
  uint32_t src_;
  /// Zero-based ordinal of the next send attempt on this channel; the fault
  /// schedule keys QP faults off it, so retries consume ordinals too.
  uint64_t sends_attempted_ = 0;
};

/// One-sided WRITE channel (memory semantics, Section 4.2.2): the sender
/// writes directly into a large preregistered staging region on the
/// destination machine, at offsets derived from the histogram exchange. The
/// remote CPU is never involved.
class RdmaMemoryImpl : public Channel {
 public:
  RdmaMemoryImpl(TransportNetwork* net, uint32_t src) : net_(net), src_(src) {}

  // The buffer layout is uniform across transports (header space up front);
  // one-sided writes simply skip the header on the wire.
  uint64_t payload_offset() const override { return kWireHeaderBytes; }

  StatusOr<uint64_t> Ship(uint32_t dst, uint32_t partition, uint32_t relation,
                          RegisteredBuffer* buf, ShipReport* report) override;

 private:
  TransportNetwork* net_;
  uint32_t src_;
};

/// Placeholder channel for the RDMA READ (pull) transport: the exchange
/// pulls through TransportNetwork::device() queue pairs directly, so pushing
/// through Ship is a contract violation.
class PullChannelStub : public Channel {
 public:
  uint64_t payload_offset() const override { return kWireHeaderBytes; }
  StatusOr<uint64_t> Ship(uint32_t, uint32_t, uint32_t, RegisteredBuffer*,
                          ShipReport*) override {
    return Status::FailedPrecondition(
        "the RDMA READ transport is receiver-driven; Ship is unavailable");
  }
};

/// TCP/IPoIB channel: the payload is copied through an intermediate "socket
/// buffer" (the kernel copy the paper's Figure 5b discussion highlights)
/// before reaching the destination.
class TcpChannelImpl : public Channel {
 public:
  TcpChannelImpl(TransportNetwork* net, uint32_t src, uint64_t buffer_bytes)
      : net_(net), src_(src), socket_buffer_(new uint8_t[buffer_bytes]) {}

  uint64_t payload_offset() const override { return kWireHeaderBytes; }

  StatusOr<uint64_t> Ship(uint32_t dst, uint32_t partition, uint32_t relation,
                          RegisteredBuffer* buf, ShipReport* report) override;

 private:
  TransportNetwork* net_;
  uint32_t src_;
  std::unique_ptr<uint8_t[]> socket_buffer_;
};

Status RdmaChannelImpl::TrySend(QueuePair* qp, CompletionQueue* cq,
                                RegisteredBuffer* buf, uint64_t wire_bytes,
                                bool* completed, bool* succeeded) {
  *completed = false;
  *succeeded = false;
  // Arm the scheduled fault (if any) for this attempt before posting, so the
  // queue pair fails the work request with verbs semantics: an error
  // completion flips the QP to the error state, a drop never completes.
  const FaultInjector* inj = net_->config_.fault_injector;
  if (inj != nullptr && inj->active()) {
    switch (inj->QuerySendFault(src_, sends_attempted_)) {
      case FaultInjector::SendFault::kNone:
        break;
      case FaultInjector::SendFault::kCompletionError:
        qp->InjectSendFaults(1, /*drop=*/false);
        break;
      case FaultInjector::SendFault::kDrop:
        qp->InjectSendFaults(1, /*drop=*/true);
        break;
    }
  }
  ++sends_attempted_;
  RDMAJOIN_RETURN_IF_ERROR(qp->PostSend(/*wr_id=*/0, buf->mr.lkey,
                                        /*offset=*/0, wire_bytes));
  // Drain the sender-side completion (instantaneous in the data-path
  // simulation; the virtual completion time comes from the timing replay).
  WorkCompletion send_wc;
  *completed = cq->PollOne(&send_wc);
  *succeeded = *completed && send_wc.success;
  return Status::OK();
}

StatusOr<uint64_t> RdmaChannelImpl::Ship(uint32_t dst, uint32_t partition,
                                         uint32_t relation, RegisteredBuffer* buf,
                                         ShipReport* report) {
  if (dst == src_) return Status::InvalidArgument("Ship to self");
  auto& link = net_->link(src_, dst);
  // Finalize the wire header in front of the payload.
  WireHeader header;
  header.partition = partition;
  header.relation = relation;
  header.payload_bytes = buf->used;
  WriteWireHeader(buf->bytes(), header);
  const uint64_t wire_bytes = kWireHeaderBytes + buf->used;

  const JoinConfig& cfg = net_->config_;
  MetricsRegistry* metrics = cfg.metrics;
  uint32_t retries = 0;
  double delay_seconds = 0;
  for (;;) {
    bool completed = false;
    bool succeeded = false;
    RDMAJOIN_RETURN_IF_ERROR(TrySend(link.src_qp.get(), link.src_send_cq.get(),
                                     buf, wire_bytes, &completed, &succeeded));
    if (succeeded) break;
    // The attempt failed: either an error completion arrived (the QP is now
    // in the error state) or the message was swallowed and the sender timed
    // out waiting. Either way the receive ring slot was NOT consumed, so a
    // re-post is credit-safe; on abort the caller keeps ownership of `buf`.
    if (metrics != nullptr) {
      metrics->GetCounter(completed ? "fault.send_errors" : "fault.send_timeouts")
          ->Increment();
    }
    if (!completed) delay_seconds += cfg.send_timeout_seconds;
    const bool abort = cfg.fault_policy == FaultPolicy::kAbort ||
                       retries >= cfg.max_send_retries;
    if (abort) {
      if (metrics != nullptr) metrics->GetCounter("fault.send_aborts")->Increment();
      return Status::Unavailable(
          (completed ? "send failed with an error completion"
                     : "send timed out (no completion)") +
          std::string(" on link ") + std::to_string(src_) + "->" +
          std::to_string(dst) + " after " + std::to_string(retries) +
          " retr" + (retries == 1 ? "y" : "ies"));
    }
    // Recover: cycle an errored queue pair back to ready and re-post after
    // exponential backoff (2^i * retry_backoff_seconds of virtual time).
    if (link.src_qp->state() == QueuePair::State::kError) {
      link.src_qp->Recover();
      if (metrics != nullptr) metrics->GetCounter("fault.qp_recoveries")->Increment();
    }
    delay_seconds +=
        cfg.retry_backoff_seconds * static_cast<double>(uint64_t{1} << retries);
    ++retries;
    if (metrics != nullptr) metrics->GetCounter("fault.send_retries")->Increment();
  }
  if (report != nullptr) {
    report->retries = retries;
    report->delay_seconds = delay_seconds;
  }

  // Receiver side: poll the receive completion, copy the payload out of the
  // ring into partition storage, and repost the receive buffer.
  WorkCompletion recv_wc;
  if (!link.dst_recv_cq->PollOne(&recv_wc) || !recv_wc.success) {
    return Status::Internal("missing receive completion");
  }
  const uint64_t ring_slot = recv_wc.wr_id;
  const uint8_t* msg = link.recv_ring.get() + ring_slot * net_->buffer_bytes_;
  const WireHeader rx = ReadWireHeader(msg);
  if (rx.payload_bytes != buf->used) {
    return Status::Internal("wire header payload size mismatch");
  }
  net_->sinks_[dst]->Deliver(rx.partition, rx.relation, msg + kWireHeaderBytes,
                             rx.payload_bytes);
  net_->stats_.recv_bytes[dst] += rx.payload_bytes;
  ++net_->stats_.recv_messages[dst];
  RDMAJOIN_RETURN_IF_ERROR(link.dst_qp->PostRecv(ring_slot, link.recv_mr.lkey,
                                                 ring_slot * net_->buffer_bytes_,
                                                 net_->buffer_bytes_));
  // The virtual traffic accounting excludes the header (negligible at full
  // scale; see JoinConfig::ActualRdmaBufferBytes).
  (void)wire_bytes;
  return buf->used;
}

StatusOr<uint64_t> RdmaMemoryImpl::Ship(uint32_t dst, uint32_t partition,
                                        uint32_t relation, RegisteredBuffer* buf,
                                        ShipReport* /*report*/) {
  if (dst == src_) return Status::InvalidArgument("Ship to self");
  auto& staging = net_->staging_[dst];
  uint64_t& cursor = staging.cursor[src_];
  if (cursor + buf->used > staging.base[src_ + 1]) {
    return Status::Internal("one-sided staging region overflow: histogram mismatch");
  }
  auto& link = net_->link(src_, dst);
  RDMAJOIN_RETURN_IF_ERROR(link.src_qp->PostWrite(/*wr_id=*/0, buf->mr.lkey,
                                                  /*local_offset=*/kWireHeaderBytes,
                                                  staging.mr.rkey, cursor, buf->used));
  WorkCompletion wc;
  if (!link.src_send_cq->PollOne(&wc) || !wc.success) {
    return Status::Internal("missing write completion");
  }
  // The data now sits in its destination region; hand it to the partition
  // store. (The real system would leave it in place; the copy here is a
  // data-path convenience with no virtual-time cost, since memory semantics
  // involve no receiver work.)
  net_->sinks_[dst]->Deliver(partition, relation, staging.data.get() + cursor,
                             buf->used);
  cursor += buf->used;
  return buf->used;
}

StatusOr<uint64_t> TcpChannelImpl::Ship(uint32_t dst, uint32_t partition,
                                        uint32_t relation, RegisteredBuffer* buf,
                                        ShipReport* /*report*/) {
  if (dst == src_) return Status::InvalidArgument("Ship to self");
  // Kernel copy into the socket buffer, then delivery on the remote side
  // (which again copies, accounted as receive bytes).
  const uint64_t wire_bytes = kWireHeaderBytes + buf->used;
  WireHeader header;
  header.partition = partition;
  header.relation = relation;
  header.payload_bytes = buf->used;
  WriteWireHeader(buf->bytes(), header);
  std::memcpy(socket_buffer_.get(), buf->bytes(), wire_bytes);
  const WireHeader rx = ReadWireHeader(socket_buffer_.get());
  net_->sinks_[dst]->Deliver(rx.partition, rx.relation,
                             socket_buffer_.get() + kWireHeaderBytes,
                             rx.payload_bytes);
  net_->stats_.recv_bytes[dst] += rx.payload_bytes;
  ++net_->stats_.recv_messages[dst];
  return buf->used;
}

TransportNetwork::~TransportNetwork() {
  // Deregister staging regions before devices go away.
  for (size_t m = 0; m < staging_.size(); ++m) {
    if (staging_[m].data != nullptr) {
      // lint: discard-ok(destructor teardown; validator reports any leak)
      (void)devices_[m]->DeregisterMemory(staging_[m].mr);
    }
  }
  for (auto& l : links_) {
    if (l.recv_ring != nullptr && l.dst_qp != nullptr) {
      // lint: discard-ok(destructor teardown; validator reports any leak)
      (void)l.dst_qp->device()->DeregisterMemory(l.recv_mr);
    }
  }
  links_.clear();
  staging_.clear();
  for (size_t m = 0; m < memories_.size(); ++m) {
    if (memories_[m] != nullptr && reserved_bytes_[m] > 0) {
      memories_[m]->Release(reserved_bytes_[m]);
    }
  }
}

StatusOr<std::unique_ptr<TransportNetwork>> TransportNetwork::Create(
    const ClusterConfig& cluster, const JoinConfig& config, uint32_t tuple_bytes,
    const std::vector<std::vector<uint64_t>>& incoming_bytes,
    std::vector<PartitionSink*> sinks, std::vector<MemorySpace*> memories) {
  auto net = std::unique_ptr<TransportNetwork>(new TransportNetwork());
  RDMAJOIN_RETURN_IF_ERROR(net->Init(cluster, config, tuple_bytes, incoming_bytes,
                                     std::move(sinks), std::move(memories)));
  return net;
}

Status TransportNetwork::Init(const ClusterConfig& cluster, const JoinConfig& config,
                              uint32_t tuple_bytes,
                              const std::vector<std::vector<uint64_t>>& incoming_bytes,
                              std::vector<PartitionSink*> sinks,
                              std::vector<MemorySpace*> memories) {
  cluster_ = cluster;
  config_ = config;
  // Full buffer size: payload capacity plus header space.
  buffer_bytes_ = config.ActualRdmaBufferBytes(tuple_bytes) + kWireHeaderBytes;
  sinks_ = std::move(sinks);
  memories_ = std::move(memories);
  const uint32_t nm = cluster.num_machines;
  if (sinks_.size() != nm || memories_.size() != nm) {
    return Status::InvalidArgument("need one sink and one memory space per machine");
  }
  stats_.setup_registration_seconds.assign(nm, 0.0);
  stats_.recv_bytes.assign(nm, 0);
  stats_.recv_messages.assign(nm, 0);
  reserved_bytes_.assign(nm, 0);

  devices_.reserve(nm);
  for (uint32_t m = 0; m < nm; ++m) {
    devices_.push_back(std::make_unique<RdmaDevice>(m, memories_[m], cluster.costs,
                                                    config.scale_up));
    devices_.back()->set_validator(config.validator);
    devices_.back()->set_event_sink(config.span_recorder);
    if (config.metrics != nullptr) {
      devices_.back()->EnableMetrics(config.metrics,
                                     "rdma.dev" + std::to_string(m));
    }
  }

  auto reserve = [&](uint32_t m, uint64_t actual_bytes) -> Status {
    if (memories_[m] == nullptr) return Status::OK();
    const uint64_t virt = static_cast<uint64_t>(
        static_cast<double>(actual_bytes) * config_.scale_up);
    RDMAJOIN_RETURN_IF_ERROR(memories_[m]->Reserve(virt));
    reserved_bytes_[m] += virt;
    return Status::OK();
  };

  // Queue pairs for every ordered machine pair (RDMA transports only).
  const bool uses_verbs = cluster.transport != TransportKind::kTcp;
  links_.resize(static_cast<size_t>(nm) * nm);
  if (uses_verbs) {
    for (uint32_t s = 0; s < nm; ++s) {
      for (uint32_t d = 0; d < nm; ++d) {
        if (s == d) continue;
        Link& l = link(s, d);
        // With a validator attached the CQs are bounded like real hardware
        // CQs, so an undrained queue surfaces as a cq-overflow violation.
        // The data path drains one completion per Ship, so a depth of ring
        // size + slack never overflows in a conforming run.
        const size_t cq_capacity =
            config.validator == nullptr
                ? 0
                : static_cast<size_t>(config.recv_buffers_per_link) + 2;
        l.src_send_cq = std::make_unique<CompletionQueue>(cq_capacity);
        l.src_recv_cq = std::make_unique<CompletionQueue>(cq_capacity);
        l.dst_send_cq = std::make_unique<CompletionQueue>(cq_capacity);
        l.dst_recv_cq = std::make_unique<CompletionQueue>(cq_capacity);
        if (config.span_recorder != nullptr) {
          l.src_send_cq->set_event_sink(config.span_recorder, s);
          l.src_recv_cq->set_event_sink(config.span_recorder, s);
          l.dst_send_cq->set_event_sink(config.span_recorder, d);
          l.dst_recv_cq->set_event_sink(config.span_recorder, d);
        }
        l.src_qp = std::make_unique<QueuePair>(devices_[s].get(), l.src_send_cq.get(),
                                               l.src_recv_cq.get());
        l.dst_qp = std::make_unique<QueuePair>(devices_[d].get(), l.dst_send_cq.get(),
                                               l.dst_recv_cq.get());
        RDMAJOIN_RETURN_IF_ERROR(QueuePair::Connect(l.src_qp.get(), l.dst_qp.get()));
      }
    }
  }

  switch (cluster.transport) {
    case TransportKind::kRdmaChannel: {
      // Receive rings: recv_buffers_per_link small registered buffers per
      // incoming link (Section 4.2.2, limited-memory configuration).
      for (uint32_t s = 0; s < nm; ++s) {
        for (uint32_t d = 0; d < nm; ++d) {
          if (s == d) continue;
          Link& l = link(s, d);
          l.recv_depth = config_.recv_buffers_per_link;
          const uint64_t ring_bytes = l.recv_depth * buffer_bytes_;
          RDMAJOIN_RETURN_IF_ERROR(reserve(d, ring_bytes));
          l.recv_ring = std::make_unique<uint8_t[]>(ring_bytes);
          auto mr = devices_[d]->RegisterMemory(l.recv_ring.get(), ring_bytes);
          RDMAJOIN_RETURN_IF_ERROR(mr.status());
          l.recv_mr = *mr;
          for (uint32_t i = 0; i < l.recv_depth; ++i) {
            RDMAJOIN_RETURN_IF_ERROR(l.dst_qp->PostRecv(
                i, l.recv_mr.lkey, i * buffer_bytes_, buffer_bytes_));
          }
        }
      }
      for (uint32_t m = 0; m < nm; ++m) {
        channels_.push_back(std::make_unique<RdmaChannelImpl>(this, m));
      }
      break;
    }
    case TransportKind::kRdmaMemory: {
      // One large staging region per destination, sized from the histogram
      // exchange, registered up front. The registration of these large
      // regions is what memory semantics pay for skipping the receiver.
      if (incoming_bytes.size() != nm) {
        return Status::InvalidArgument(
            "one-sided transport needs expected incoming sizes per machine");
      }
      staging_.resize(nm);
      for (uint32_t d = 0; d < nm; ++d) {
        StagingRegion& sr = staging_[d];
        sr.base.assign(nm + 1, 0);
        for (uint32_t s = 0; s < nm; ++s) {
          sr.base[s + 1] = sr.base[s] + (s == d ? 0 : incoming_bytes[d][s]);
        }
        sr.capacity = sr.base[nm];
        sr.cursor = sr.base;
        sr.cursor.resize(nm);
        if (sr.capacity == 0) continue;
        RDMAJOIN_RETURN_IF_ERROR(reserve(d, sr.capacity));
        sr.data = std::make_unique<uint8_t[]>(sr.capacity);
        auto mr = devices_[d]->RegisterMemory(sr.data.get(), sr.capacity);
        RDMAJOIN_RETURN_IF_ERROR(mr.status());
        sr.mr = *mr;
        const uint64_t virt_bytes = static_cast<uint64_t>(
            static_cast<double>(sr.capacity) * config_.scale_up);
        stats_.setup_registration_seconds[d] +=
            cluster.costs.RegistrationSeconds(virt_bytes);
      }
      // All senders write through the destination's staging rkey; the
      // queue pairs above provide the one-sided path.
      for (uint32_t m = 0; m < nm; ++m) {
        channels_.push_back(std::make_unique<RdmaMemoryImpl>(this, m));
      }
      break;
    }
    case TransportKind::kRdmaRead: {
      // The pull path drives the queue pairs directly from the exchange;
      // only the connected QP mesh built above is needed.
      for (uint32_t m = 0; m < nm; ++m) {
        channels_.push_back(std::make_unique<PullChannelStub>());
      }
      break;
    }
    case TransportKind::kTcp: {
      for (uint32_t m = 0; m < nm; ++m) {
        channels_.push_back(
            std::make_unique<TcpChannelImpl>(this, m, buffer_bytes_ * 2));
      }
      break;
    }
  }
  return Status::OK();
}

}  // namespace rdmajoin
