#ifndef RDMAJOIN_WORKLOAD_GENERATOR_H_
#define RDMAJOIN_WORKLOAD_GENERATOR_H_

#include <cstdint>

#include "util/statusor.h"
#include "workload/relation.h"

namespace rdmajoin {

/// Description of a join workload in the style of the paper's evaluation
/// (Section 6.1.1): highly distinct-value joins where every outer tuple has
/// exactly one match in the inner relation.
struct WorkloadSpec {
  /// Tuples in the inner relation R (actual, i.e. already scaled).
  uint64_t inner_tuples = 1 << 20;
  /// Tuples in the outer relation S. Ratios 1:1 ... 1:16 in the paper.
  uint64_t outer_tuples = 1 << 20;
  /// Tuple width in bytes: 16 (narrow, <key,rid>), 32 or 64 (Section 6.7).
  uint32_t tuple_bytes = kNarrowTupleBytes;
  /// Zipf exponent for the outer relation's foreign keys; 0 = uniform.
  /// The paper uses 1.05 (low skew) and 1.20 (high skew).
  double zipf_theta = 0.0;
  /// RNG seed; every workload is reproducible.
  uint64_t seed = 42;

  Status Validate() const;
};

/// Properties of the generated data the join output can be checked against.
/// Because inner keys are distinct and every outer key hits the inner
/// relation, the expected values are exact (computed during generation).
struct GroundTruth {
  /// Exact number of result tuples (= |S| for these workloads).
  uint64_t expected_matches = 0;
  /// Sum (mod 2^64) of the join key over all result tuples.
  uint64_t expected_key_sum = 0;
  /// Sum (mod 2^64) of the inner rid over all result tuples. Inner rids are
  /// derived as rid = 2*key + 1, so this is checkable without a lookup table.
  uint64_t expected_inner_rid_sum = 0;
};

/// A generated workload, fragmented across `num_machines` machines.
struct Workload {
  WorkloadSpec spec;
  DistributedRelation inner;
  DistributedRelation outer;
  GroundTruth truth;
};

/// Generates a workload per `spec`, fragmented evenly across `num_machines`.
///
/// Inner relation: keys are a random permutation of [0, inner_tuples), each
/// with rid = 2*key + 1 (identity-derived so that result checksums have a
/// closed form). Outer relation: uniform mode assigns key i%|R| to outer
/// tuple i before shuffling (exactly |S|/|R| matches per inner key); Zipf
/// mode samples keys from a Zipf distribution over [0, |R|).
StatusOr<Workload> GenerateWorkload(const WorkloadSpec& spec, uint32_t num_machines);

/// Inner rid for key k under the generator's rid scheme.
inline uint64_t InnerRidForKey(uint64_t key) { return 2 * key + 1; }

}  // namespace rdmajoin

#endif  // RDMAJOIN_WORKLOAD_GENERATOR_H_
