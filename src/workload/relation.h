#ifndef RDMAJOIN_WORKLOAD_RELATION_H_
#define RDMAJOIN_WORKLOAD_RELATION_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/status.h"

namespace rdmajoin {

/// Byte offset of the 8-byte join key within a tuple.
inline constexpr uint32_t kKeyOffset = 0;
/// Byte offset of the 8-byte record id within a tuple.
inline constexpr uint32_t kRidOffset = 8;
/// Minimum tuple width: <key, rid> (the paper's narrow-tuple workload).
inline constexpr uint32_t kNarrowTupleBytes = 16;

/// A row-layout in-memory relation: `num_tuples` fixed-width tuples, key at
/// offset 0 and record id at offset 8, followed by an optional payload
/// (Section 6.7's wide-tuple workloads use 32- and 64-byte tuples).
class Relation {
 public:
  /// Creates an empty relation of `tuple_bytes`-wide tuples. Width must be a
  /// multiple of 8 and at least 16.
  explicit Relation(uint32_t tuple_bytes = kNarrowTupleBytes);

  uint32_t tuple_bytes() const { return tuple_bytes_; }
  uint64_t num_tuples() const { return num_tuples_; }
  uint64_t size_bytes() const { return num_tuples_ * tuple_bytes_; }
  bool empty() const { return num_tuples_ == 0; }

  /// Preallocates storage for `n` tuples without changing num_tuples().
  void Reserve(uint64_t n);
  /// Sets the tuple count; newly exposed tuples are zero-initialized.
  void Resize(uint64_t n);
  void Clear();
  /// Releases all storage.
  void Deallocate();

  const uint8_t* data() const { return data_.data(); }
  uint8_t* data() { return data_.data(); }
  const uint8_t* TupleAt(uint64_t i) const { return data_.data() + i * tuple_bytes_; }
  uint8_t* TupleAt(uint64_t i) { return data_.data() + i * tuple_bytes_; }

  uint64_t Key(uint64_t i) const {
    uint64_t k;
    std::memcpy(&k, TupleAt(i) + kKeyOffset, sizeof(k));
    return k;
  }
  uint64_t Rid(uint64_t i) const {
    uint64_t r;
    std::memcpy(&r, TupleAt(i) + kRidOffset, sizeof(r));
    return r;
  }

  /// Writes key and rid of tuple `i`; the payload (if any) is filled with the
  /// deterministic pattern PayloadByte(key, j) so transfers can be verified.
  void SetTuple(uint64_t i, uint64_t key, uint64_t rid);

  /// Appends `count` raw tuples (must match this relation's width).
  void AppendRaw(const uint8_t* tuples, uint64_t count);
  /// Appends a single <key, rid> tuple with a deterministic payload.
  void Append(uint64_t key, uint64_t rid);

  /// Expected payload byte `j` (j >= 16) of a tuple with key `key`.
  static uint8_t PayloadByte(uint64_t key, uint32_t j) {
    return static_cast<uint8_t>((key + j) & 0xFF);
  }

  /// Verifies the payload pattern of every tuple; used by integrity tests.
  Status VerifyPayloads() const;

 private:
  uint32_t tuple_bytes_;
  uint64_t num_tuples_ = 0;
  std::vector<uint8_t> data_;
};

/// A relation horizontally fragmented across the machines of a cluster
/// (the paper's data-loading phase distributes input evenly, Section 6.1.1).
struct DistributedRelation {
  std::vector<Relation> chunks;  // chunks[m] lives on machine m.

  uint64_t total_tuples() const {
    uint64_t n = 0;
    for (const auto& c : chunks) n += c.num_tuples();
    return n;
  }
  uint64_t total_bytes() const {
    uint64_t n = 0;
    for (const auto& c : chunks) n += c.size_bytes();
    return n;
  }
  uint32_t tuple_bytes() const {
    return chunks.empty() ? kNarrowTupleBytes : chunks[0].tuple_bytes();
  }
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_WORKLOAD_RELATION_H_
