#include "workload/relation.h"

#include <cassert>

namespace rdmajoin {

Relation::Relation(uint32_t tuple_bytes) : tuple_bytes_(tuple_bytes) {
  assert(tuple_bytes >= kNarrowTupleBytes && tuple_bytes % 8 == 0);
}

void Relation::Reserve(uint64_t n) { data_.reserve(n * tuple_bytes_); }

void Relation::Resize(uint64_t n) {
  data_.resize(n * tuple_bytes_, 0);
  num_tuples_ = n;
}

void Relation::Clear() {
  data_.clear();
  num_tuples_ = 0;
}

void Relation::Deallocate() {
  std::vector<uint8_t>().swap(data_);
  num_tuples_ = 0;
}

void Relation::SetTuple(uint64_t i, uint64_t key, uint64_t rid) {
  uint8_t* t = TupleAt(i);
  std::memcpy(t + kKeyOffset, &key, sizeof(key));
  std::memcpy(t + kRidOffset, &rid, sizeof(rid));
  for (uint32_t j = kNarrowTupleBytes; j < tuple_bytes_; ++j) {
    t[j] = PayloadByte(key, j);
  }
}

void Relation::AppendRaw(const uint8_t* tuples, uint64_t count) {
  data_.insert(data_.end(), tuples, tuples + count * tuple_bytes_);
  num_tuples_ += count;
}

void Relation::Append(uint64_t key, uint64_t rid) {
  const uint64_t i = num_tuples_;
  Resize(i + 1);
  SetTuple(i, key, rid);
}

Status Relation::VerifyPayloads() const {
  for (uint64_t i = 0; i < num_tuples_; ++i) {
    const uint8_t* t = TupleAt(i);
    const uint64_t key = Key(i);
    for (uint32_t j = kNarrowTupleBytes; j < tuple_bytes_; ++j) {
      if (t[j] != PayloadByte(key, j)) {
        return Status::Internal("payload corruption at tuple " + std::to_string(i) +
                                " byte " + std::to_string(j));
      }
    }
  }
  return Status::OK();
}

}  // namespace rdmajoin
