#include "workload/generator.h"

#include <algorithm>
#include <numeric>

#include "util/random.h"
#include "util/zipf.h"

namespace rdmajoin {

namespace {

/// Splits `total` tuples into per-machine chunk sizes, distributing the
/// remainder over the first machines.
std::vector<uint64_t> EvenSplit(uint64_t total, uint32_t machines) {
  std::vector<uint64_t> sizes(machines, total / machines);
  for (uint64_t i = 0; i < total % machines; ++i) ++sizes[i];
  return sizes;
}

}  // namespace

Status WorkloadSpec::Validate() const {
  if (inner_tuples == 0 || outer_tuples == 0) {
    return Status::InvalidArgument("relations must be non-empty");
  }
  if (outer_tuples < inner_tuples) {
    return Status::InvalidArgument(
        "the outer relation must be at least as large as the inner relation");
  }
  if (tuple_bytes < kNarrowTupleBytes || tuple_bytes % 8 != 0) {
    return Status::InvalidArgument("tuple width must be a multiple of 8, >= 16");
  }
  if (zipf_theta < 0) return Status::InvalidArgument("zipf_theta must be >= 0");
  return Status::OK();
}

StatusOr<Workload> GenerateWorkload(const WorkloadSpec& spec, uint32_t num_machines) {
  RDMAJOIN_RETURN_IF_ERROR(spec.Validate());
  if (num_machines == 0) {
    return Status::InvalidArgument("need at least one machine");
  }

  Workload w;
  w.spec = spec;
  Random rng(spec.seed);

  // --- Inner relation: a shuffled permutation of [0, |R|). ---
  std::vector<uint64_t> inner_keys(spec.inner_tuples);
  std::iota(inner_keys.begin(), inner_keys.end(), 0);
  for (uint64_t i = spec.inner_tuples - 1; i > 0; --i) {
    std::swap(inner_keys[i], inner_keys[rng.Uniform(i + 1)]);
  }
  const auto inner_sizes = EvenSplit(spec.inner_tuples, num_machines);
  w.inner.chunks.reserve(num_machines);
  uint64_t pos = 0;
  for (uint32_t m = 0; m < num_machines; ++m) {
    Relation chunk(spec.tuple_bytes);
    chunk.Resize(inner_sizes[m]);
    for (uint64_t i = 0; i < inner_sizes[m]; ++i) {
      const uint64_t key = inner_keys[pos++];
      chunk.SetTuple(i, key, InnerRidForKey(key));
    }
    w.inner.chunks.push_back(std::move(chunk));
  }

  // --- Outer relation: every key in [0, |R|), uniform or Zipf. ---
  std::vector<uint64_t> outer_keys(spec.outer_tuples);
  if (spec.zipf_theta == 0.0) {
    for (uint64_t i = 0; i < spec.outer_tuples; ++i) {
      outer_keys[i] = i % spec.inner_tuples;
    }
    for (uint64_t i = spec.outer_tuples - 1; i > 0; --i) {
      std::swap(outer_keys[i], outer_keys[rng.Uniform(i + 1)]);
    }
  } else {
    ZipfGenerator zipf(spec.inner_tuples, spec.zipf_theta, rng.Next());
    for (uint64_t i = 0; i < spec.outer_tuples; ++i) outer_keys[i] = zipf.Next();
  }

  uint64_t key_sum = 0;
  uint64_t rid_sum = 0;
  const auto outer_sizes = EvenSplit(spec.outer_tuples, num_machines);
  w.outer.chunks.reserve(num_machines);
  pos = 0;
  for (uint32_t m = 0; m < num_machines; ++m) {
    Relation chunk(spec.tuple_bytes);
    chunk.Resize(outer_sizes[m]);
    for (uint64_t i = 0; i < outer_sizes[m]; ++i) {
      const uint64_t key = outer_keys[pos];
      chunk.SetTuple(i, key, pos);
      key_sum += key;
      rid_sum += InnerRidForKey(key);
      ++pos;
    }
    w.outer.chunks.push_back(std::move(chunk));
  }

  w.truth.expected_matches = spec.outer_tuples;
  w.truth.expected_key_sum = key_sum;
  w.truth.expected_inner_rid_sum = rid_sum;
  return w;
}

}  // namespace rdmajoin
