#ifndef RDMAJOIN_FAULT_INJECTOR_H_
#define RDMAJOIN_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "fault/schedule.h"

namespace rdmajoin {

/// Read-only query interface over a FaultSchedule, consumed by the timing
/// replay (link / straggler / credit windows on the virtual clock) and by
/// the execution-layer transport (QP faults keyed by send ordinal). The
/// injector holds no mutable state, so one instance can serve any number of
/// runs and threads; determinism comes entirely from the schedule.
class FaultInjector {
 public:
  /// Empty, inactive injector.
  FaultInjector() = default;
  explicit FaultInjector(FaultSchedule schedule);

  /// False when the schedule is empty: every query answers with the identity
  /// (scale 1, no transition, no fault), and callers are expected to skip
  /// the injector entirely to stay byte-identical with an injector-free run.
  bool active() const { return !schedule_.empty(); }
  const FaultSchedule& schedule() const { return schedule_; }

  // ---- Replay facet (network-pass virtual clock) ----

  /// Capacity scale of `host` at time `t`: the product of all overlapping
  /// kLinkDegrade factors, 0 inside any kLinkFlap window. Exactly 1.0 when
  /// no window covers `t`.
  double EgressScale(uint32_t host, double t) const { return LinkScale(host, t); }
  double IngressScale(uint32_t host, double t) const { return LinkScale(host, t); }

  /// Earliest window boundary (start or end, any windowed event) strictly
  /// after `t`; +infinity when none remain. The replay advances the fabric
  /// to each boundary so rate changes land on the discrete-event clock.
  double NextTransitionAfter(double t) const;

  /// True when any kStraggler window targets `machine`.
  bool HasStraggler(uint32_t machine) const;

  /// Virtual time at which `nominal_seconds` of compute started at `start`
  /// finishes on `machine`, integrating the straggler rate piecewise
  /// (rate = product of overlapping straggler factors, 1 outside windows).
  /// Returns exactly start + nominal_seconds when no window intersects.
  double ComputeFinishTime(uint32_t machine, double start,
                           double nominal_seconds) const;

  /// True when any kCreditShrink event exists (for `machine` or all).
  bool HasCreditFaults() const;

  /// Send credits available to `machine` at time `t`: `base` outside any
  /// kCreditShrink window, else max(1, floor(base * factor-product)).
  uint32_t EffectiveCredits(uint32_t machine, double t, uint32_t base) const;

  /// True when any link-capacity window (degrade or flap) exists.
  bool HasLinkFaults() const;

  // ---- Execution facet (transport send path) ----

  enum class SendFault : uint8_t {
    kNone = 0,
    /// Deliver an error work completion; the QP moves to the error state.
    kCompletionError,
    /// Swallow the send: no completion ever arrives (sender must time out).
    kDrop,
  };

  /// Fault injected into the `ordinal`-th Ship attempt (zero-based, counted
  /// per channel) issued by `src_machine`.
  SendFault QuerySendFault(uint32_t src_machine, uint64_t ordinal) const;
  bool HasSendFaults() const;

 private:
  double LinkScale(uint32_t host, double t) const;

  FaultSchedule schedule_;
  bool has_link_ = false;
  bool has_straggler_ = false;
  bool has_credit_ = false;
  bool has_send_ = false;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_FAULT_INJECTOR_H_
