#ifndef RDMAJOIN_FAULT_SCHEDULE_H_
#define RDMAJOIN_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace rdmajoin {

/// Kinds of runtime faults the injector can schedule. Every fault is a timed
/// event on the discrete-event clock of the network partitioning pass, so a
/// given (schedule, seed) pair replays bit-identically.
enum class FaultKind : uint8_t {
  /// Scales one machine's egress and ingress port capacity by `factor`
  /// (0 < factor <= 1) for the window [start, start + duration). Models a
  /// link renegotiating to a lower rate or congestion outside the rack.
  kLinkDegrade = 0,
  /// Link flap: the machine's ports carry no traffic at all during the
  /// window (capacity scale 0). In-flight messages stall and resume when the
  /// window closes; nothing is lost. The window must be finite.
  kLinkFlap = 1,
  /// Straggler: the machine's partitioning threads compute at `factor` times
  /// their nominal rate during the window. Models a thermally throttled or
  /// co-scheduled node.
  kStraggler = 2,
  /// Queue-pair fault on the execution path: consecutive Ship attempts
  /// [ordinal, ordinal + count) issued by `machine` fail. With drop = false
  /// the send completes with an error work completion and the QP transitions
  /// to the error state (per verbs semantics); with drop = true the
  /// completion never arrives and the sender must time out.
  kQpError = 3,
  /// Buffer-pool pressure: the machine's per-slot send-credit supply is
  /// scaled by `factor` (floored, minimum one credit) during the window.
  kCreditShrink = 4,
};

/// Stable lower-case name ("link-degrade", "link-flap", "straggler",
/// "qp-error", "credit-shrink") used in JSON and on the command line.
std::string FaultKindName(FaultKind kind);
StatusOr<FaultKind> FaultKindFromName(const std::string& name);

/// One scheduled fault. Fields beyond `kind` are interpreted per kind; unused
/// fields keep their defaults and are omitted from JSON.
struct FaultEvent {
  /// Applies to every machine.
  static constexpr uint32_t kAllMachines = UINT32_MAX;

  FaultKind kind = FaultKind::kLinkDegrade;
  /// Window on the network-pass clock (seconds of virtual time from the
  /// phase barrier). Ignored by kQpError, which is keyed by ordinal instead.
  double start_seconds = 0;
  double duration_seconds = 0;
  /// Affected machine, or kAllMachines.
  uint32_t machine = kAllMachines;
  /// Capacity / compute-rate / credit scale in (0, 1]; forced to 0 for
  /// kLinkFlap.
  double factor = 1.0;
  /// kQpError: zero-based index of the first affected Ship attempt on the
  /// issuing machine's channel, and how many consecutive attempts fail.
  uint64_t ordinal = 0;
  uint32_t count = 1;
  /// kQpError: true drops the completion entirely (sender must time out);
  /// false delivers an error work completion immediately.
  bool drop = false;

  double end_seconds() const { return start_seconds + duration_seconds; }
};

/// A deterministic list of fault events. Order carries no meaning; windows
/// may overlap (scales multiply).
struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Checks internal consistency: finite non-negative windows, factors in
  /// (0, 1] where a scale is meaningful, positive counts, and machine
  /// indices below `num_machines` (kAllMachines always passes). Pass 0 to
  /// skip the machine-range check (schedule not yet bound to a cluster).
  Status Validate(uint32_t num_machines = 0) const;
};

/// JSON round trip. The document is {"version":1,"events":[...]} with one
/// object per event; numeric fields use shortest round-trip formatting so
/// serialization is byte-stable.
std::string FaultScheduleToJson(const FaultSchedule& schedule);
StatusOr<FaultSchedule> FaultScheduleFromJson(const std::string& text);

/// Named presets for the CLI and the chaos tool. `seed` parameterizes the
/// randomized ones ("chaos"); the rest are fixed. Names:
///   none, link-degrade, link-flap, straggler, qp-error, qp-drop,
///   credit-shrink, chaos
StatusOr<FaultSchedule> MakeFaultPreset(const std::string& name, uint64_t seed,
                                        uint32_t num_machines);
std::vector<std::string> FaultPresetNames();

/// A seeded multi-fault schedule mixing all kinds; deterministic in
/// (seed, num_machines).
FaultSchedule MakeChaosSchedule(uint64_t seed, uint32_t num_machines);

/// Loads a schedule from `spec`: a preset name first, else a path to a JSON
/// schedule file.
StatusOr<FaultSchedule> LoadFaultSchedule(const std::string& spec, uint64_t seed,
                                          uint32_t num_machines);

}  // namespace rdmajoin

#endif  // RDMAJOIN_FAULT_SCHEDULE_H_
