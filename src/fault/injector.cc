#include "fault/injector.h"

#include <cmath>
#include <limits>

namespace rdmajoin {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool Covers(const FaultEvent& e, uint32_t machine, double t) {
  if (e.machine != FaultEvent::kAllMachines && e.machine != machine) return false;
  return t >= e.start_seconds && t < e.end_seconds();
}

bool Targets(const FaultEvent& e, uint32_t machine) {
  return e.machine == FaultEvent::kAllMachines || e.machine == machine;
}

}  // namespace

FaultInjector::FaultInjector(FaultSchedule schedule)
    : schedule_(std::move(schedule)) {
  for (const FaultEvent& e : schedule_.events) {
    switch (e.kind) {
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkFlap:
        has_link_ = true;
        break;
      case FaultKind::kStraggler:
        has_straggler_ = true;
        break;
      case FaultKind::kCreditShrink:
        has_credit_ = true;
        break;
      case FaultKind::kQpError:
        has_send_ = true;
        break;
    }
  }
}

double FaultInjector::LinkScale(uint32_t host, double t) const {
  double scale = 1.0;
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind == FaultKind::kLinkFlap && Covers(e, host, t)) return 0.0;
    if (e.kind == FaultKind::kLinkDegrade && Covers(e, host, t)) {
      scale *= e.factor;
    }
  }
  return scale;
}

double FaultInjector::NextTransitionAfter(double t) const {
  double best = kInf;
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind == FaultKind::kQpError) continue;
    if (e.start_seconds > t) best = std::min(best, e.start_seconds);
    const double end = e.end_seconds();
    if (end > t) best = std::min(best, end);
  }
  return best;
}

bool FaultInjector::HasStraggler(uint32_t machine) const {
  if (!has_straggler_) return false;
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind == FaultKind::kStraggler && Targets(e, machine)) return true;
  }
  return false;
}

double FaultInjector::ComputeFinishTime(uint32_t machine, double start,
                                        double nominal_seconds) const {
  if (!(nominal_seconds > 0)) return start;
  double cur = start;
  double remaining = nominal_seconds;
  for (;;) {
    double rate = 1.0;
    double next = kInf;
    for (const FaultEvent& e : schedule_.events) {
      if (e.kind != FaultKind::kStraggler || !Targets(e, machine)) continue;
      if (Covers(e, machine, cur)) rate *= e.factor;
      if (e.start_seconds > cur) next = std::min(next, e.start_seconds);
      const double end = e.end_seconds();
      if (end > cur) next = std::min(next, end);
    }
    // Inside a window-free stretch the expression stays `cur + remaining`,
    // so a machine with no straggler windows finishes at exactly
    // start + nominal_seconds.
    const double finish = cur + remaining / rate;
    if (finish <= next) return finish;
    remaining -= (next - cur) * rate;
    cur = next;
  }
}

bool FaultInjector::HasCreditFaults() const { return has_credit_; }

uint32_t FaultInjector::EffectiveCredits(uint32_t machine, double t,
                                         uint32_t base) const {
  if (!has_credit_) return base;
  double scale = 1.0;
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind == FaultKind::kCreditShrink && Covers(e, machine, t)) {
      scale *= e.factor;
    }
  }
  if (scale >= 1.0) return base;
  const double scaled = std::floor(static_cast<double>(base) * scale);
  return scaled < 1.0 ? 1u : static_cast<uint32_t>(scaled);
}

bool FaultInjector::HasLinkFaults() const { return has_link_; }

FaultInjector::SendFault FaultInjector::QuerySendFault(uint32_t src_machine,
                                                       uint64_t ordinal) const {
  if (!has_send_) return SendFault::kNone;
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind != FaultKind::kQpError || !Targets(e, src_machine)) continue;
    if (ordinal >= e.ordinal && ordinal - e.ordinal < e.count) {
      return e.drop ? SendFault::kDrop : SendFault::kCompletionError;
    }
  }
  return SendFault::kNone;
}

bool FaultInjector::HasSendFaults() const { return has_send_; }

}  // namespace rdmajoin
