#include "fault/schedule.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/json.h"

namespace rdmajoin {

namespace {

/// SplitMix64: the schedule generator's own small PRNG so chaos schedules
/// are reproducible without dragging in <random> distribution differences.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double UnitUniform(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

bool WindowedKind(FaultKind kind) {
  return kind == FaultKind::kLinkDegrade || kind == FaultKind::kLinkFlap ||
         kind == FaultKind::kStraggler || kind == FaultKind::kCreditShrink;
}

}  // namespace

std::string FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDegrade:
      return "link-degrade";
    case FaultKind::kLinkFlap:
      return "link-flap";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kQpError:
      return "qp-error";
    case FaultKind::kCreditShrink:
      return "credit-shrink";
  }
  return "unknown";
}

StatusOr<FaultKind> FaultKindFromName(const std::string& name) {
  if (name == "link-degrade") return FaultKind::kLinkDegrade;
  if (name == "link-flap") return FaultKind::kLinkFlap;
  if (name == "straggler") return FaultKind::kStraggler;
  if (name == "qp-error") return FaultKind::kQpError;
  if (name == "credit-shrink") return FaultKind::kCreditShrink;
  return Status::InvalidArgument("unknown fault kind: " + name);
}

Status FaultSchedule::Validate(uint32_t num_machines) const {
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    const std::string where = "fault event " + std::to_string(i) + " (" +
                              FaultKindName(e.kind) + "): ";
    if (num_machines > 0 && e.machine != FaultEvent::kAllMachines &&
        e.machine >= num_machines) {
      return Status::InvalidArgument(where + "machine index out of range");
    }
    if (WindowedKind(e.kind)) {
      if (!std::isfinite(e.start_seconds) || e.start_seconds < 0) {
        return Status::InvalidArgument(where + "start must be finite and >= 0");
      }
      if (!std::isfinite(e.duration_seconds) || e.duration_seconds <= 0) {
        return Status::InvalidArgument(where +
                                       "duration must be finite and positive");
      }
    }
    switch (e.kind) {
      case FaultKind::kLinkDegrade:
      case FaultKind::kStraggler:
      case FaultKind::kCreditShrink:
        // A zero scale would deadlock the replay (kLinkFlap is the sanctioned
        // zero-capacity fault, and its window is finite by the check above).
        if (!(e.factor > 0) || e.factor > 1) {
          return Status::InvalidArgument(where + "factor must be in (0, 1]");
        }
        break;
      case FaultKind::kLinkFlap:
        break;  // factor is ignored (treated as 0).
      case FaultKind::kQpError:
        if (e.count == 0) {
          return Status::InvalidArgument(where + "count must be positive");
        }
        break;
    }
  }
  return Status::OK();
}

std::string FaultScheduleToJson(const FaultSchedule& schedule) {
  std::string out = "{\"version\":1,\"events\":[";
  for (size_t i = 0; i < schedule.events.size(); ++i) {
    const FaultEvent& e = schedule.events[i];
    if (i > 0) out += ',';
    out += "{\"kind\":\"" + FaultKindName(e.kind) + "\"";
    if (WindowedKind(e.kind)) {
      out += ",\"start_seconds\":" + JsonNumber(e.start_seconds);
      out += ",\"duration_seconds\":" + JsonNumber(e.duration_seconds);
    }
    if (e.machine != FaultEvent::kAllMachines) {
      out += ",\"machine\":" + std::to_string(e.machine);
    }
    if (e.kind == FaultKind::kLinkDegrade || e.kind == FaultKind::kStraggler ||
        e.kind == FaultKind::kCreditShrink) {
      out += ",\"factor\":" + JsonNumber(e.factor);
    }
    if (e.kind == FaultKind::kQpError) {
      out += ",\"ordinal\":" + std::to_string(e.ordinal);
      out += ",\"count\":" + std::to_string(e.count);
      if (e.drop) out += ",\"drop\":true";
    }
    out += '}';
  }
  out += "]}";
  return out;
}

StatusOr<FaultSchedule> FaultScheduleFromJson(const std::string& text) {
  RDMAJOIN_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(text));
  if (!doc.is_object()) {
    return Status::InvalidArgument("fault schedule must be a JSON object");
  }
  const double version = doc.NumberOr("version", 1);
  if (version != 1) {
    return Status::InvalidArgument("unsupported fault schedule version");
  }
  const JsonValue* events = doc.Find("events");
  if (events == nullptr || !events->is_array()) {
    return Status::InvalidArgument("fault schedule needs an \"events\" array");
  }
  FaultSchedule schedule;
  for (const JsonValue& ev : events->array_items) {
    if (!ev.is_object()) {
      return Status::InvalidArgument("fault event must be a JSON object");
    }
    FaultEvent e;
    RDMAJOIN_ASSIGN_OR_RETURN(e.kind, FaultKindFromName(ev.StringOr("kind", "")));
    e.start_seconds = ev.NumberOr("start_seconds", 0);
    e.duration_seconds = ev.NumberOr("duration_seconds", 0);
    const double machine =
        ev.NumberOr("machine", static_cast<double>(FaultEvent::kAllMachines));
    if (machine < 0 || machine > static_cast<double>(FaultEvent::kAllMachines)) {
      return Status::InvalidArgument("fault event machine out of range");
    }
    e.machine = static_cast<uint32_t>(machine);
    e.factor = ev.NumberOr("factor", 1.0);
    e.ordinal = static_cast<uint64_t>(ev.NumberOr("ordinal", 0));
    e.count = static_cast<uint32_t>(ev.NumberOr("count", 1));
    e.drop = ev.BoolOr("drop", false);
    schedule.events.push_back(e);
  }
  RDMAJOIN_RETURN_IF_ERROR(schedule.Validate());
  return schedule;
}

std::vector<std::string> FaultPresetNames() {
  return {"none",     "link-degrade", "link-flap", "straggler",
          "qp-error", "qp-drop",      "credit-shrink", "chaos"};
}

StatusOr<FaultSchedule> MakeFaultPreset(const std::string& name, uint64_t seed,
                                        uint32_t num_machines) {
  const uint32_t target = num_machines > 1 ? 1 : 0;
  FaultSchedule s;
  if (name == "none") return s;
  if (name == "link-degrade") {
    FaultEvent e;
    e.kind = FaultKind::kLinkDegrade;
    e.machine = target;
    e.start_seconds = 0;
    e.duration_seconds = 10.0;
    e.factor = 0.4;
    s.events.push_back(e);
    return s;
  }
  if (name == "link-flap") {
    FaultEvent e;
    e.kind = FaultKind::kLinkFlap;
    e.machine = target;
    e.start_seconds = 5e-6;
    e.duration_seconds = 2e-5;
    s.events.push_back(e);
    return s;
  }
  if (name == "straggler") {
    FaultEvent e;
    e.kind = FaultKind::kStraggler;
    e.machine = target;
    e.start_seconds = 0;
    e.duration_seconds = 10.0;
    e.factor = 0.5;
    s.events.push_back(e);
    return s;
  }
  if (name == "qp-error" || name == "qp-drop") {
    FaultEvent e;
    e.kind = FaultKind::kQpError;
    e.machine = target;
    e.ordinal = 2;
    e.count = 1;
    e.drop = name == "qp-drop";
    s.events.push_back(e);
    return s;
  }
  if (name == "credit-shrink") {
    FaultEvent e;
    e.kind = FaultKind::kCreditShrink;
    e.machine = FaultEvent::kAllMachines;
    e.start_seconds = 0;
    e.duration_seconds = 10.0;
    e.factor = 0.5;
    s.events.push_back(e);
    return s;
  }
  if (name == "chaos") return MakeChaosSchedule(seed, num_machines);
  return Status::InvalidArgument("unknown fault preset: " + name);
}

FaultSchedule MakeChaosSchedule(uint64_t seed, uint32_t num_machines) {
  // Mix the machine count into the stream so different cluster sizes under
  // the same seed still get distinct but reproducible schedules.
  uint64_t state = seed * 0x2545f4914f6cdd1dULL + num_machines;
  const uint32_t nm = num_machines > 0 ? num_machines : 1;
  auto pick_machine = [&]() -> uint32_t {
    return static_cast<uint32_t>(SplitMix64(&state) % nm);
  };
  FaultSchedule s;
  const int extra = static_cast<int>(SplitMix64(&state) % 3);  // 4..6 events
  const int total = 4 + extra;
  for (int i = 0; i < total; ++i) {
    FaultEvent e;
    switch (SplitMix64(&state) % 5) {
      case 0:
        e.kind = FaultKind::kLinkDegrade;
        e.machine = pick_machine();
        e.start_seconds = UnitUniform(&state) * 4e-5;
        e.duration_seconds = 1e-5 + UnitUniform(&state) * 9e-5;
        e.factor = 0.2 + UnitUniform(&state) * 0.7;
        break;
      case 1:
        e.kind = FaultKind::kLinkFlap;
        e.machine = pick_machine();
        e.start_seconds = UnitUniform(&state) * 4e-5;
        e.duration_seconds = 2e-6 + UnitUniform(&state) * 2e-5;
        break;
      case 2:
        e.kind = FaultKind::kStraggler;
        e.machine = pick_machine();
        e.start_seconds = UnitUniform(&state) * 2e-5;
        e.duration_seconds = 2e-5 + UnitUniform(&state) * 1e-4;
        e.factor = 0.25 + UnitUniform(&state) * 0.65;
        break;
      case 3:
        e.kind = FaultKind::kQpError;
        e.machine = pick_machine();
        e.ordinal = SplitMix64(&state) % 8;
        e.count = 1 + static_cast<uint32_t>(SplitMix64(&state) % 2);
        e.drop = (SplitMix64(&state) & 1) != 0;
        break;
      default:
        e.kind = FaultKind::kCreditShrink;
        e.machine = pick_machine();
        e.start_seconds = UnitUniform(&state) * 2e-5;
        e.duration_seconds = 2e-5 + UnitUniform(&state) * 1e-4;
        e.factor = 0.34 + UnitUniform(&state) * 0.66;
        break;
    }
    s.events.push_back(e);
  }
  return s;
}

StatusOr<FaultSchedule> LoadFaultSchedule(const std::string& spec, uint64_t seed,
                                          uint32_t num_machines) {
  StatusOr<FaultSchedule> preset = MakeFaultPreset(spec, seed, num_machines);
  if (preset.ok()) return preset;
  std::ifstream in(spec, std::ios::binary);
  if (!in) {
    return Status::NotFound("fault schedule \"" + spec +
                            "\" is neither a preset nor a readable file");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return FaultScheduleFromJson(buf.str());
}

}  // namespace rdmajoin
