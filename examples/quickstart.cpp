// Quickstart: run a distributed radix hash join on a simulated 4-machine
// FDR InfiniBand cluster and print the verified result and phase breakdown.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "util/units.h"
#include "workload/generator.h"

using namespace rdmajoin;

int main() {
  // 1. Describe the hardware: four machines, eight cores each, connected by
  //    a 6 GB/s FDR InfiniBand fabric (Table 2 of the paper).
  const ClusterConfig cluster = FdrCluster(/*num_machines=*/4);

  // 2. Generate a foreign-key join workload: 16-byte <key, rid> tuples,
  //    every outer tuple matches exactly one inner tuple. The generator
  //    fragments both relations evenly across the machines and returns the
  //    exact expected result for verification.
  WorkloadSpec spec;
  spec.inner_tuples = 1'000'000;
  spec.outer_tuples = 2'000'000;
  auto workload = GenerateWorkload(spec, cluster.num_machines);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n", workload.status().ToString().c_str());
    return 1;
  }

  // 3. Configure the join. scale_up tells the simulator which full-scale
  //    workload this run represents: with 64x, this 1M-tuple run models a
  //    64M-tuple join, and all reported times are full-scale seconds.
  JoinConfig config;
  config.scale_up = 64.0;

  // 4. Run. The data path is real (tuples are partitioned, shipped through
  //    the simulated RDMA transport, and joined); time is virtual.
  DistributedJoin join(cluster, config);
  auto result = join.Run(workload->inner, workload->outer);
  if (!result.ok()) {
    std::fprintf(stderr, "join: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 5. Verify against the generator's ground truth and report.
  const bool ok = result->stats.matches == workload->truth.expected_matches &&
                  result->stats.key_sum == workload->truth.expected_key_sum &&
                  result->stats.inner_rid_sum == workload->truth.expected_inner_rid_sum;
  std::printf("join of %llu x %llu tuples on %s\n",
              static_cast<unsigned long long>(spec.inner_tuples),
              static_cast<unsigned long long>(spec.outer_tuples),
              cluster.name.c_str());
  std::printf("  matches:            %llu (%s)\n",
              static_cast<unsigned long long>(result->stats.matches),
              ok ? "verified against ground truth" : "MISMATCH");
  std::printf("  histogram phase:    %s\n",
              FormatSeconds(result->times.histogram_seconds).c_str());
  std::printf("  network partition:  %s\n",
              FormatSeconds(result->times.network_partition_seconds).c_str());
  std::printf("  local partition:    %s\n",
              FormatSeconds(result->times.local_partition_seconds).c_str());
  std::printf("  build-probe:        %s\n",
              FormatSeconds(result->times.build_probe_seconds).c_str());
  std::printf("  total (full-scale): %s\n",
              FormatSeconds(result->times.TotalSeconds()).c_str());
  std::printf("  network traffic:    %.1f MB in %llu messages\n",
              result->net.virtual_wire_bytes / 1e6,
              static_cast<unsigned long long>(result->net.messages_sent));
  return ok ? 0 : 1;
}
