// Scenario: a declarative analytics pipeline on one rack -- the setting the
// paper assumes when it treats the join "as part of an operator pipeline in
// which the result of the join is materialized at a later point" (Section 7):
//
//   SELECT product, SUM(click_id)
//   FROM clicks JOIN products USING (product)
//   WHERE product is in the promoted half
//   GROUP BY product
//
// Built with the plan layer (operators/plan.h): scan -> filter -> distributed
// hash join -> distributed aggregation, with a sort-merge variant for
// comparison. Each distributed operator runs the full RDMA machinery
// (histogram exchange, pooled-buffer network pass); the reported seconds are
// virtual full-scale times.
//
//   $ ./build/examples/operator_pipeline

#include <cstdio>

#include "cluster/presets.h"
#include "operators/plan.h"
#include "util/table_printer.h"
#include "workload/generator.h"

using namespace rdmajoin;

int main() {
  const double kScaleUp = 1024.0;
  PlanContext ctx;
  ctx.cluster = FdrCluster(4);
  ctx.config.scale_up = kScaleUp;

  WorkloadSpec spec;
  spec.inner_tuples = static_cast<uint64_t>(256e6 / kScaleUp);   // products
  spec.outer_tuples = static_cast<uint64_t>(2048e6 / kScaleUp);  // clicks
  auto workload = GenerateWorkload(spec, ctx.cluster.num_machines);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  std::printf("Pipeline: 2048M clicks JOIN 256M products (promoted half)\n"
              "          -> GROUP BY product, on %s\n\n",
              ctx.cluster.name.c_str());

  auto build_plan = [&](bool sort_merge) {
    auto products = Filter(
        Scan(&workload->inner, "scan products (256M)"),
        [](uint64_t key, uint64_t) { return key % 2 == 0; }, "promoted half");
    auto clicks = Scan(&workload->outer, "scan clicks (2048M)");
    auto joined = sort_merge
                      ? SortMergeJoin(std::move(products), std::move(clicks),
                                      "sort-merge join")
                      : HashJoin(std::move(products), std::move(clicks),
                                 "radix hash join");
    return Aggregate(std::move(joined), "group by product");
  };

  {
    auto plan = build_plan(false);
    std::printf("plan:\n%s\n", ExplainPlan(*plan).c_str());
  }

  TablePrinter table("pipeline execution (virtual seconds)");
  table.SetHeader({"variant", "result groups", "total_s"});
  for (bool sort_merge : {false, true}) {
    auto plan = build_plan(sort_merge);
    auto out = plan->Execute(ctx);
    if (!out.ok()) {
      std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
      return 1;
    }
    // Half the products survive the filter; each has clicks, so the group
    // count equals the surviving product count.
    const bool verified = out->rows == spec.inner_tuples / 2;
    table.AddRow({sort_merge ? "sort-merge pipeline" : "hash-join pipeline",
                  TablePrinter::Int(static_cast<long long>(out->rows)) +
                      (verified ? "" : " (UNEXPECTED)"),
                  TablePrinter::Num(out->seconds)});
  }
  table.Print();
  std::printf("The radix hash join keeps its advantage through the pipeline; the\n"
              "aggregation adds one more partitioning-bound pass over the matches.\n");
  return 0;
}
