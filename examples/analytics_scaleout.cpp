// Scenario: a real-time analytics operator joining a day of click events
// (outer, large) against a customer dimension (inner, smaller) -- the
// "orders join lineitem"-style workload the paper's introduction motivates.
// The example sweeps the cluster size and shows when adding machines stops
// paying off on a QDR rack, using both the simulation and Eq. 12/13 of the
// analytical model to explain why.
//
//   $ ./build/examples/analytics_scaleout

#include <cstdio>

#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "model/analytical_model.h"
#include "util/table_printer.h"
#include "workload/generator.h"

using namespace rdmajoin;

int main() {
  // Full-scale workload: 512M customers x 4096M clicks, 16-byte tuples.
  // The simulation runs it at 1/1024 scale.
  const double kScaleUp = 1024.0;
  const double inner_mtuples = 512, outer_mtuples = 4096;

  std::printf("Click-stream join: %.0fM customers x %.0fM clicks on a QDR rack\n\n",
              inner_mtuples, outer_mtuples);

  TablePrinter table("scale-out sweep");
  table.SetHeader({"machines", "total_s", "network_s", "speedup", "efficiency",
                   "net_bound"});
  double base_time = 0;
  uint32_t base_machines = 0;
  for (uint32_t m = 2; m <= 10; m += 2) {
    WorkloadSpec spec;
    spec.inner_tuples = static_cast<uint64_t>(inner_mtuples * 1e6 / kScaleUp);
    spec.outer_tuples = static_cast<uint64_t>(outer_mtuples * 1e6 / kScaleUp);
    auto workload = GenerateWorkload(spec, m);
    if (!workload.ok()) continue;
    JoinConfig config;
    config.scale_up = kScaleUp;
    DistributedJoin join(QdrCluster(m), config);
    auto result = join.Run(workload->inner, workload->outer);
    if (!result.ok()) {
      table.AddRow({TablePrinter::Int(m), result.status().ToString(), "-", "-", "-",
                    "-"});
      continue;
    }
    if (base_time == 0) {
      base_time = result->times.TotalSeconds();
      base_machines = m;
    }
    const double speedup = base_time / result->times.TotalSeconds();
    const double efficiency = speedup / (static_cast<double>(m) / base_machines);
    ModelParams params = ParamsFromCluster(
        QdrCluster(m), static_cast<uint64_t>(inner_mtuples * 16e6),
        static_cast<uint64_t>(outer_mtuples * 16e6));
    table.AddRow({TablePrinter::Int(m),
                  TablePrinter::Num(result->times.TotalSeconds()),
                  TablePrinter::Num(result->times.network_partition_seconds),
                  TablePrinter::Num(speedup, 2) + "x",
                  TablePrinter::Num(100 * efficiency, 0) + "%",
                  IsNetworkBound(params) ? "yes" : "no"});
  }
  table.Print();

  // Explain the knee with the model.
  ModelParams p = ParamsFromCluster(QdrCluster(10),
                                    static_cast<uint64_t>(inner_mtuples * 16e6),
                                    static_cast<uint64_t>(outer_mtuples * 16e6));
  std::printf("The QDR network is the bottleneck: Eq. 12 says %.1f partitioning\n"
              "threads per machine already saturate it (each machine has 7), so\n"
              "scale-out efficiency drops as more data crosses the wire.\n",
              OptimalPartitioningThreads(p));
  return 0;
}
