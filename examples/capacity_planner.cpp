// Scenario: capacity planning with the analytical model (Section 5) alone --
// no simulation run required. Given a workload and a network generation,
// the planner answers the questions the paper's model is built for:
//   * how many cores per machine saturate the network (Eq. 12),
//   * how many machines the RDMA buffers allow before they stop filling
//     completely (Eq. 13) and the cores stop getting partitions (Eq. 14),
//   * the predicted execution time and phase breakdown for each cluster size.
//
//   $ ./build/examples/capacity_planner [inner_mtuples outer_mtuples]

#include <cstdio>
#include <cstdlib>

#include "cluster/presets.h"
#include "model/analytical_model.h"
#include "util/table_printer.h"

using namespace rdmajoin;

int main(int argc, char** argv) {
  double inner_mtuples = 2048, outer_mtuples = 8192;
  if (argc >= 3) {
    inner_mtuples = std::atof(argv[1]);
    outer_mtuples = std::atof(argv[2]);
  }
  const uint64_t inner_bytes = static_cast<uint64_t>(inner_mtuples * 16e6);
  const uint64_t outer_bytes = static_cast<uint64_t>(outer_mtuples * 16e6);
  std::printf("Capacity planning for a %.0fM x %.0fM tuple join (%.1f GB total)\n\n",
              inner_mtuples, outer_mtuples,
              static_cast<double>(inner_bytes + outer_bytes) / 1e9);

  struct Network {
    const char* label;
    double bandwidth;
    double congestion;
  };
  // QDR and FDR from the paper, plus the HDR generation its Section 7
  // anticipates ("InfiniBand will offer 25 GB/s (HDR) by 2017").
  const Network networks[] = {
      {"QDR (3.4 GB/s)", 3.4e9, 110e6},
      {"FDR (6.0 GB/s)", 6.0e9, 0.0},
      {"HDR (25 GB/s, projected)", 25.0e9, 0.0},
  };

  for (const Network& net : networks) {
    TablePrinter table(net.label);
    table.SetHeader({"machines", "opt_threads(Eq12)", "max_mach(Eq13)",
                     "cores_ok(Eq14)", "bound", "predicted_total_s"});
    for (uint32_t m : {2u, 4u, 8u, 16u, 32u}) {
      ClusterConfig cluster = QdrCluster(m);
      cluster.fabric.egress_bytes_per_sec = net.bandwidth;
      cluster.fabric.ingress_bytes_per_sec = net.bandwidth;
      cluster.fabric.congestion_bytes_per_sec_per_extra_host = net.congestion;
      if (cluster.fabric.EffectiveEgress() <= 0) {
        table.AddRow({TablePrinter::Int(m), "-", "-", "-", "congested out", "-"});
        continue;
      }
      ModelParams p = ParamsFromCluster(cluster, inner_bytes, outer_bytes);
      const ModelEstimate est = Estimate(p);
      const double max_machines =
          MaxMachinesForFullBuffers(p, 1024, 64.0 * 1024 / 1e6);
      table.AddRow({TablePrinter::Int(m),
                    TablePrinter::Num(OptimalPartitioningThreads(p), 1),
                    TablePrinter::Num(max_machines, 0),
                    SatisfiesCoreAssignment(p, 1024) ? "yes" : "NO",
                    est.network_bound ? "network" : "CPU",
                    TablePrinter::Num(est.TotalSeconds())});
    }
    table.Print();
  }
  std::printf("Reading the tables: pick the machine count where the bound column\n"
              "flips to CPU (more machines past that point still help, but only\n"
              "linearly in the local phases); keep machines below max_mach(Eq13)\n"
              "so RDMA buffers fill completely; on faster networks, more cores per\n"
              "machine (Eq12) are needed to saturate the wire.\n");
  return 0;
}
