// Scenario: a join whose outer foreign keys follow a heavy Zipf distribution
// (a "hot products" click table). The example compares the static
// round-robin partition assignment against the paper's dynamic skew-aware
// assignment (Section 4.1) and probe-range splitting (Section 4.3), and
// prints the per-machine load imbalance that explains the difference.
//
//   $ ./build/examples/skew_tuning

#include <algorithm>
#include <cstdio>

#include "cluster/presets.h"
#include "join/assignment.h"
#include "join/distributed_join.h"
#include "join/histogram.h"
#include "util/table_printer.h"
#include "workload/generator.h"

using namespace rdmajoin;

int main() {
  const uint32_t kMachines = 8;
  const double kScaleUp = 1024.0;
  WorkloadSpec spec;
  spec.inner_tuples = static_cast<uint64_t>(128e6 / kScaleUp);
  spec.outer_tuples = static_cast<uint64_t>(2048e6 / kScaleUp);
  spec.zipf_theta = 1.20;  // The paper's "heavy skew".
  auto workload = GenerateWorkload(spec, kMachines);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  std::printf("Zipf(%.2f) join: 128M x 2048M tuples on 8 QDR machines\n\n",
              spec.zipf_theta);

  // Show how unbalanced the first-pass partitions are.
  auto hist = ComputeHistograms(workload->outer, 10);
  uint64_t max_part = 0;
  for (uint64_t c : hist.global) max_part = std::max(max_part, c);
  std::printf("largest of %u partitions holds %.1f%% of the outer relation\n"
              "(uniform share would be %.2f%%)\n\n",
              hist.num_partitions(),
              100.0 * max_part / spec.outer_tuples,
              100.0 / hist.num_partitions());

  TablePrinter table("assignment policy comparison");
  table.SetHeader({"configuration", "max/avg machine load", "network_s",
                   "local+bp_s", "total_s"});
  struct Config {
    const char* label;
    AssignmentPolicy policy;
    double split;
  };
  for (const Config& cfg :
       {Config{"static round-robin, no splitting", AssignmentPolicy::kRoundRobin, 0.0},
        Config{"dynamic skew-aware, no splitting", AssignmentPolicy::kSkewAware, 0.0},
        Config{"dynamic skew-aware + probe split", AssignmentPolicy::kSkewAware,
               2.0}}) {
    JoinConfig config;
    config.scale_up = kScaleUp;
    config.assignment = cfg.policy;
    config.skew_split_factor = cfg.split;
    DistributedJoin join(QdrCluster(kMachines), config);
    auto result = join.Run(workload->inner, workload->outer);
    if (!result.ok()) {
      table.AddRow({cfg.label, "-", "-", "-", result.status().ToString()});
      continue;
    }
    // Recompute the load statistic for the chosen policy.
    std::vector<uint64_t> combined(hist.num_partitions());
    auto inner_hist = ComputeHistograms(workload->inner, 10);
    for (uint32_t p = 0; p < hist.num_partitions(); ++p) {
      combined[p] = hist.global[p] + inner_hist.global[p];
    }
    auto assignment = cfg.policy == AssignmentPolicy::kRoundRobin
                          ? RoundRobinAssignment(hist.num_partitions(), kMachines)
                          : SkewAwareAssignment(combined, kMachines);
    auto load = AssignedLoad(combined, assignment, kMachines);
    uint64_t max_load = 0, total = 0;
    for (uint64_t l : load) {
      max_load = std::max(max_load, l);
      total += l;
    }
    const double imbalance = static_cast<double>(max_load) * kMachines / total;
    table.AddRow({cfg.label, TablePrinter::Num(imbalance, 2),
                  TablePrinter::Num(result->times.network_partition_seconds),
                  TablePrinter::Num(result->times.local_partition_seconds +
                                    result->times.build_probe_seconds),
                  TablePrinter::Num(result->times.TotalSeconds())});
  }
  table.Print();
  std::printf("With one partition holding ~20%% of the data, no assignment policy\n"
              "can balance machines perfectly (Section 6.5 reaches the same\n"
              "conclusion and proposes inter-machine work sharing as future work).\n");
  return 0;
}
